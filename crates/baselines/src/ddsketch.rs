//! DDSketch (Masson, Rim, Lee, VLDB 2019) — reference \[15\] of the REQ
//! paper.
//!
//! DDSketch guarantees relative error **on values**, not on ranks: the item
//! returned for a quantile query is within `(1 ± α)` of the true item's
//! *value*. The REQ paper (§1.1) points out this notion "only makes sense for
//! data universes with a notion of magnitude", is not invariant under data
//! translation, and "is trivially achieved by maintaining a histogram with
//! buckets ((1+α)^i, (1+α)^{i+1}]" — which is exactly what DDSketch is:
//! geometric buckets plus a collapsing rule bounding the bucket count.
//! Experiment E12 contrasts this value-error guarantee with REQ's rank-error
//! guarantee under translation.

use std::collections::BTreeMap;

use sketch_traits::{MergeableSketch, QuantileSketch, SpaceUsage};

/// DDSketch with low-bucket collapsing (the paper's bounded-memory variant).
#[derive(Debug, Clone)]
pub struct DdSketch {
    alpha: f64,
    gamma: f64,
    log_gamma: f64,
    max_buckets: usize,
    /// bucket index -> count; bucket i covers (γ^{i−1}, γ^i].
    buckets: BTreeMap<i32, u64>,
    zero_count: u64,
    n: u64,
    min: f64,
    max: f64,
}

impl DdSketch {
    /// New sketch with value-relative accuracy `alpha ∈ (0, 1)` and a bucket
    /// budget (collapses the lowest buckets when exceeded; 2048 is the
    /// DataDog default).
    pub fn new(alpha: f64, max_buckets: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        assert!(max_buckets >= 2, "need at least two buckets");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        DdSketch {
            alpha,
            gamma,
            log_gamma: gamma.ln(),
            max_buckets,
            buckets: BTreeMap::new(),
            zero_count: 0,
            n: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Configured α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of non-empty buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len() + usize::from(self.zero_count > 0)
    }

    fn bucket_index(&self, x: f64) -> i32 {
        debug_assert!(x > 0.0);
        (x.ln() / self.log_gamma).ceil() as i32
    }

    /// Representative value of bucket `i`: the midpoint estimate
    /// `2·γ^i / (γ + 1)`, within `(1±α)` of anything in the bucket.
    fn bucket_value(&self, i: i32) -> f64 {
        2.0 * self.gamma.powi(i) / (self.gamma + 1.0)
    }

    fn collapse_if_needed(&mut self) {
        while self.buckets.len() > self.max_buckets {
            // merge the two lowest buckets (the paper's collapsing rule:
            // tail accuracy at high quantiles is preserved).
            let mut it = self.buckets.keys().copied();
            let lowest = it.next().expect("nonempty");
            let second = it.next().expect("len > max >= 2");
            let c = self.buckets.remove(&lowest).expect("present");
            *self.buckets.entry(second).or_insert(0) += c;
        }
    }

    /// Observe a value; negative inputs are clamped to the zero bucket
    /// (this variant models non-negative measurements such as latencies).
    pub fn update_f64(&mut self, x: f64) {
        self.n += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x <= 0.0 || !x.is_finite() {
            self.zero_count += 1;
            return;
        }
        let idx = self.bucket_index(x);
        *self.buckets.entry(idx).or_insert(0) += 1;
        self.collapse_if_needed();
    }

    /// Quantile in value space (the operation DDSketch guarantees).
    pub fn quantile_f64(&self, q: f64) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.n as f64).ceil() as u64).clamp(1, self.n);
        let mut acc = self.zero_count;
        if acc >= target {
            return Some(0.0);
        }
        for (&i, &c) in &self.buckets {
            acc += c;
            if acc >= target {
                return Some(self.bucket_value(i));
            }
        }
        Some(self.bucket_value(*self.buckets.keys().last()?))
    }

    /// Estimated rank of a value (derived from the histogram; ranks carry no
    /// formal guarantee — that's the point of E12).
    pub fn rank_f64(&self, y: f64) -> u64 {
        let mut acc = if y >= 0.0 { self.zero_count } else { 0 };
        if y > 0.0 {
            let yi = self.bucket_index(y);
            for (&i, &c) in &self.buckets {
                if i <= yi {
                    acc += c;
                } else {
                    break;
                }
            }
        }
        acc
    }
}

impl QuantileSketch<f64> for DdSketch {
    fn update(&mut self, item: f64) {
        self.update_f64(item);
    }

    fn len(&self) -> u64 {
        self.n
    }

    fn rank(&self, item: &f64) -> u64 {
        self.rank_f64(*item)
    }

    fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile_f64(q)
    }
}

impl MergeableSketch for DdSketch {
    fn merge(&mut self, other: Self) {
        assert!(
            (self.alpha - other.alpha).abs() < f64::EPSILON,
            "alpha mismatch"
        );
        for (i, c) in other.buckets {
            *self.buckets.entry(i).or_insert(0) += c;
        }
        self.zero_count += other.zero_count;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.collapse_if_needed();
    }
}

impl SpaceUsage for DdSketch {
    fn retained(&self) -> usize {
        self.num_buckets()
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.buckets.len() * (std::mem::size_of::<(i32, u64)>() + 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_relative_guarantee_holds() {
        let alpha = 0.01;
        let mut s = DdSketch::new(alpha, 4096);
        let n = 100_000u64;
        for i in 1..=n {
            s.update_f64(i as f64);
        }
        for q in [0.01, 0.5, 0.9, 0.99, 0.999] {
            let est = s.quantile_f64(q).unwrap();
            let true_v = (q * n as f64).ceil().max(1.0);
            let rel = (est - true_v).abs() / true_v;
            assert!(rel <= alpha + 1e-9, "q={q}: est {est} vs {true_v}");
        }
    }

    #[test]
    fn bucket_count_is_logarithmic() {
        let mut s = DdSketch::new(0.01, 1 << 20);
        for i in 1..=1_000_000u64 {
            s.update_f64(i as f64);
        }
        // log_gamma(10^6) ≈ ln(10^6)/ln(1.0202) ≈ 690 buckets
        assert!(s.num_buckets() < 800, "{} buckets", s.num_buckets());
    }

    #[test]
    fn collapsing_bounds_buckets_and_keeps_tail() {
        let mut s = DdSketch::new(0.02, 64);
        for i in 1..=100_000u64 {
            s.update_f64(i as f64);
        }
        assert!(s.num_buckets() <= 65);
        // tail quantiles survive collapsing of *low* buckets
        let p99 = s.quantile_f64(0.99).unwrap();
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.05, "p99 {p99}");
    }

    #[test]
    fn zero_and_negative_values() {
        let mut s = DdSketch::new(0.05, 128);
        s.update_f64(0.0);
        s.update_f64(-3.0);
        s.update_f64(10.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.quantile_f64(0.1), Some(0.0));
        let r = s.rank_f64(5.0);
        assert_eq!(r, 2);
    }

    #[test]
    fn merge_sums_buckets() {
        let mut a = DdSketch::new(0.02, 1024);
        let mut b = DdSketch::new(0.02, 1024);
        for i in 1..=10_000u64 {
            a.update_f64(i as f64);
            b.update_f64((i + 10_000) as f64);
        }
        a.merge(b);
        assert_eq!(a.len(), 20_000);
        let med = a.quantile_f64(0.5).unwrap();
        assert!((med - 10_000.0).abs() / 10_000.0 < 0.05, "median {med}");
    }

    #[test]
    fn not_translation_invariant_unlike_rank_error() {
        // The REQ paper's critique: shifting all data by a constant changes
        // which queries DDSketch answers accurately. A value near the shifted
        // p50 has value-relative slack proportional to the *shifted* value.
        let mut s = DdSketch::new(0.05, 4096);
        let shift = 1_000_000.0;
        for i in 1..=1_000u64 {
            s.update_f64(shift + i as f64);
        }
        let p50 = s.quantile_f64(0.5).unwrap();
        // α-relative slack on the value ~ 50,000 — vastly exceeding the
        // whole data spread of 1,000.
        let value_slack = 0.05 * p50;
        assert!(value_slack > 1_000.0);
        // The returned value is within α of the true value ...
        assert!((p50 - (shift + 500.0)).abs() / (shift + 500.0) <= 0.05 + 1e-9);
        // ... but its RANK can be arbitrarily wrong: everything collapses
        // into very few buckets at this magnitude.
        assert!(s.num_buckets() < 10, "{} buckets", s.num_buckets());
    }

    #[test]
    #[should_panic(expected = "alpha mismatch")]
    fn merge_rejects_mismatched_alpha() {
        let mut a = DdSketch::new(0.02, 64);
        let b = DdSketch::new(0.05, 64);
        a.merge(b);
    }
}
