//! The KLL sketch (Karnin, Lang, Liberty, FOCS 2016) — the optimal
//! **additive**-error quantile sketch, reference \[12\] of the REQ paper.
//!
//! Like REQ, KLL is a stack of compactors where a level-`h` item weighs
//! `2^h`; unlike REQ, level capacities *shrink geometrically with depth*
//! (`k·c^(depth)`, `c = 2/3`) and a compaction halves the **whole** buffer.
//! That yields `O(k)` total space and additive error `εn` with `ε = O(1/k)`
//! — excellent at the median, useless deep in the tails, which is precisely
//! the contrast experiment E1 demonstrates.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use req_core::SortedView;
use sketch_traits::{MergeableSketch, QuantileSketch, SpaceUsage};

const DECAY: f64 = 2.0 / 3.0;
const MIN_LEVEL_CAP: usize = 8;

/// KLL additive-error quantile sketch.
#[derive(Debug, Clone)]
pub struct KllSketch<T> {
    k: u32,
    levels: Vec<Vec<T>>,
    n: u64,
    rng: SmallRng,
}

impl<T: Ord + Clone> KllSketch<T> {
    /// New sketch; `k` controls accuracy (`ε ≈ c/k`) and space (`O(k)`).
    pub fn new(k: u32, seed: u64) -> Self {
        KllSketch {
            k: k.max(8),
            levels: vec![Vec::new()],
            n: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Accuracy parameter `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Capacity of level `h` given the current height: top level holds `k`
    /// items, each level below shrinks by `c`, floored at a small constant.
    fn level_capacity(&self, h: usize) -> usize {
        let depth = self.levels.len().saturating_sub(1 + h) as i32;
        let cap = (self.k as f64 * DECAY.powi(depth)).ceil() as usize;
        cap.max(MIN_LEVEL_CAP)
    }

    fn compress(&mut self) {
        let mut h = 0;
        while h < self.levels.len() {
            if self.levels[h].len() >= self.level_capacity(h) {
                if h + 1 == self.levels.len() {
                    self.levels.push(Vec::new());
                }
                let coin = self.rng.gen::<bool>();
                let mut buf = std::mem::take(&mut self.levels[h]);
                buf.sort_unstable();
                // keep one parity item behind so weight is conserved exactly
                let keep_odd = buf.len() % 2 == 1;
                let offset = usize::from(coin);
                let mut kept_parity = None;
                if keep_odd {
                    kept_parity = buf.pop();
                }
                let promote: Vec<T> = buf
                    .into_iter()
                    .enumerate()
                    .filter_map(|(i, x)| (i % 2 == offset).then_some(x))
                    .collect();
                self.levels[h + 1].extend(promote);
                if let Some(x) = kept_parity {
                    self.levels[h].push(x);
                }
            }
            h += 1;
        }
    }

    /// Weighted sorted snapshot for batched queries.
    pub fn sorted_view(&self) -> SortedView<T> {
        let mut raw = Vec::with_capacity(self.retained());
        for (h, level) in self.levels.iter().enumerate() {
            let w = 1u64 << h;
            raw.extend(level.iter().map(|x| (x.clone(), w)));
        }
        SortedView::from_weighted_items(raw)
    }

    /// Total weight of retained items (equals `n`: compactions conserve it).
    pub fn total_weight(&self) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .map(|(h, l)| (l.len() as u64) << h)
            .sum()
    }
}

impl<T: Ord + Clone> QuantileSketch<T> for KllSketch<T> {
    fn update(&mut self, item: T) {
        self.n += 1;
        self.levels[0].push(item);
        if self.levels[0].len() >= self.level_capacity(0) {
            self.compress();
        }
    }

    /// Batched ingest, same trick as the REQ sketch: fill level 0 with
    /// whole sub-slices and compress once per fill. State-identical to
    /// per-item ingest (compressions trigger at the same points with the
    /// same coin draws).
    fn update_batch(&mut self, items: &[T]) {
        let mut rest = items;
        while !rest.is_empty() {
            let cap = self.level_capacity(0);
            let room = cap.saturating_sub(self.levels[0].len()).max(1);
            let take = rest.len().min(room);
            let (chunk, tail) = rest.split_at(take);
            self.levels[0].extend_from_slice(chunk);
            self.n += take as u64;
            rest = tail;
            if self.levels[0].len() >= cap {
                self.compress();
            }
        }
    }

    fn len(&self) -> u64 {
        self.n
    }

    fn rank(&self, y: &T) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .map(|(h, l)| (l.iter().filter(|x| *x <= y).count() as u64) << h)
            .sum()
    }

    fn quantile(&self, q: f64) -> Option<T> {
        self.sorted_view().quantile(q).cloned()
    }
}

impl<T: Ord + Clone> MergeableSketch for KllSketch<T> {
    fn merge(&mut self, other: Self) {
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
        }
        for (h, level) in other.levels.into_iter().enumerate() {
            self.levels[h].extend(level);
        }
        self.n += other.n;
        self.compress();
    }
}

impl<T> SpaceUsage for KllSketch<T> {
    fn retained(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .levels
                .iter()
                .map(|l| l.capacity() * std::mem::size_of::<T>() + std::mem::size_of::<Vec<T>>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_stream_is_exact() {
        let mut s = KllSketch::<u64>::new(200, 1);
        for i in 0..100 {
            s.update(i);
        }
        for y in 0..100 {
            assert_eq!(s.rank(&y), y + 1);
        }
    }

    #[test]
    fn update_batch_matches_per_item_state() {
        let items: Vec<u64> = (0..100_000u64).map(|i| i.wrapping_mul(48271)).collect();
        let mut per_item = KllSketch::<u64>::new(64, 11);
        for &x in &items {
            per_item.update(x);
        }
        let mut batched = KllSketch::<u64>::new(64, 11);
        for chunk in items.chunks(1777) {
            batched.update_batch(chunk);
        }
        assert_eq!(batched.len(), per_item.len());
        assert_eq!(batched.total_weight(), per_item.total_weight());
        assert_eq!(batched.num_levels(), per_item.num_levels());
        for y in (0..u64::MAX).step_by(usize::MAX / 13).take(13) {
            assert_eq!(batched.rank(&y), per_item.rank(&y));
        }
    }

    #[test]
    fn weight_is_conserved() {
        let mut s = KllSketch::<u64>::new(64, 2);
        for i in 0..300_000u64 {
            s.update(i.wrapping_mul(48271));
        }
        assert_eq!(s.total_weight(), 300_000);
    }

    #[test]
    fn space_is_bounded_by_o_k() {
        let mut s = KllSketch::<u64>::new(200, 3);
        for i in 0..1_000_000u64 {
            s.update(i);
        }
        // Σ k·c^d ≤ k/(1-c) = 3k, plus per-level minimum slack.
        let bound = 3 * 200 + s.num_levels() * (2 * MIN_LEVEL_CAP);
        assert!(s.retained() <= bound, "{} > {}", s.retained(), bound);
    }

    #[test]
    fn additive_error_at_median_is_small() {
        let mut s = KllSketch::<u64>::new(256, 4);
        let n = 1u64 << 20;
        for i in 0..n {
            s.update(i.wrapping_mul(2654435761) % n);
        }
        let r = s.rank(&(n / 2));
        let err = (r as f64 - (n / 2 + 1) as f64).abs();
        assert!(err < 0.01 * n as f64, "median err {err}");
    }

    #[test]
    fn merge_adds_up_and_stays_accurate() {
        let mut a = KllSketch::<u64>::new(128, 5);
        let mut b = KllSketch::<u64>::new(128, 6);
        let n = 100_000u64;
        for i in 0..n {
            a.update(i);
            b.update(n + i);
        }
        a.merge(b);
        assert_eq!(a.len(), 2 * n);
        assert_eq!(a.total_weight(), 2 * n);
        let r = a.rank(&n);
        let err = (r as f64 - (n + 1) as f64).abs();
        assert!(err < 0.02 * (2 * n) as f64, "err {err}");
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut s = KllSketch::<u64>::new(64, 7);
        for i in 0..200_000u64 {
            s.update(i.wrapping_mul(16807) % 1_000_003);
        }
        let mut prev = 0;
        for i in 0..=20 {
            let q = s.quantile(i as f64 / 20.0).unwrap();
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn empty_sketch() {
        let s = KllSketch::<u64>::new(64, 8);
        assert!(s.is_empty());
        assert_eq!(s.rank(&5), 0);
        assert_eq!(s.quantile(0.5), None);
    }
}
