//! The "always compact half the buffer" ablation (paper §2.1), which is
//! also the space regime of Zhang et al. \[22\].
//!
//! > "If we were to set L = B/2 for all compaction operations, then analyzing
//! > the worst-case behavior reveals that we need k ≈ 1/ε², resulting in a
//! > sketch with a quadratic dependency on 1/ε." — §2.1
//!
//! This sketch is a stack of [`RelativeCompactor`]s configured with a
//! *single* section (`num_sections = 1`, section size `B/2`), so every
//! compaction involves exactly half the buffer — no derandomized-exponential
//! schedule. With per-level buffers of size `Θ(1/ε²)` it achieves the
//! `O(ε⁻²·log(ε²n))` space of \[22\]; experiments E3 and E10 measure the
//! quadratic-vs-linear `1/ε` separation against the full REQ schedule.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use req_core::compactor::{RankAccuracy, RelativeCompactor};
use req_core::{LevelArena, SortedView};
use sketch_traits::{QuantileSketch, SpaceUsage};

/// Relative-error sketch whose compactions always halve the buffer.
#[derive(Debug, Clone)]
pub struct HalvingSketch<T> {
    arena: LevelArena<T>,
    levels: Vec<RelativeCompactor<T>>,
    half: u32,
    accuracy: RankAccuracy,
    n: u64,
    rng: SmallRng,
}

impl<T: Ord + Clone> HalvingSketch<T> {
    /// New sketch whose per-level buffer holds `2·half` items and compacts
    /// the top `half` when full. `half` must be even and ≥ 4.
    pub fn new(half: u32, accuracy: RankAccuracy, seed: u64) -> Self {
        assert!(
            half >= 4 && half.is_multiple_of(2),
            "half must be even and >= 4"
        );
        HalvingSketch {
            arena: LevelArena::new(),
            levels: Vec::new(),
            half,
            accuracy,
            n: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Parameterize for relative error `eps`: `half = Θ(1/ε²)` per §2.1's
    /// worst-case analysis.
    pub fn from_eps(eps: f64, accuracy: RankAccuracy, seed: u64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0);
        let raw = (1.0 / (eps * eps)).ceil() as u64;
        let half = (raw + (raw & 1)).clamp(4, 1 << 24) as u32;
        Self::new(half, accuracy, seed)
    }

    /// Per-level buffer size `B = 2·half`.
    pub fn level_capacity(&self) -> usize {
        2 * self.half as usize
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    fn ensure_level(&mut self, h: usize) {
        while self.levels.len() <= h {
            self.levels
                .push(RelativeCompactor::new(&mut self.arena, self.half, 1));
        }
    }

    /// Insert a sorted run (compaction output) at level `h`: chunks are
    /// *merged* into the level's sorted run — the same run-maintenance
    /// building block the full REQ sketch uses — so no level ever re-sorts
    /// what a compaction below already ordered.
    fn insert_run_at(&mut self, h: usize, mut items: Vec<T>) {
        self.ensure_level(h);
        while !items.is_empty() {
            let room = self.levels[h]
                .capacity()
                .saturating_sub(self.levels[h].len(&self.arena))
                .max(1);
            let accuracy = self.accuracy;
            let take = items.len().min(room);
            self.levels[h].merge_sorted_run_prefix(&mut self.arena, &mut items, take, accuracy);
            if self.levels[h].is_at_capacity(&self.arena) {
                let coin = self.rng.gen::<bool>();
                let accuracy = self.accuracy;
                let mut out = Vec::new();
                // num_sections = 1 ⇒ the schedule always selects the single
                // B/2-sized section: L = B/2 on every compaction.
                self.levels[h].compact_scheduled(&mut self.arena, accuracy, coin, &mut out);
                self.insert_run_at(h + 1, out);
            }
        }
    }

    /// Weighted sorted snapshot for batched queries — a k-way merge of the
    /// per-level sorted runs.
    pub fn sorted_view(&self) -> SortedView<T> {
        SortedView::from_levels(&self.levels, &self.arena, self.accuracy)
    }

    /// Total weight (equals `n`).
    pub fn total_weight(&self) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .map(|(h, l)| (l.len(&self.arena) as u64) << h)
            .sum()
    }
}

impl<T: Ord + Clone> QuantileSketch<T> for HalvingSketch<T> {
    fn update(&mut self, item: T) {
        self.n += 1;
        self.ensure_level(0);
        self.levels[0].push(&mut self.arena, item);
        if self.levels[0].is_at_capacity(&self.arena) {
            let coin = self.rng.gen::<bool>();
            let accuracy = self.accuracy;
            let mut out = Vec::new();
            self.levels[0].compact_scheduled(&mut self.arena, accuracy, coin, &mut out);
            self.insert_run_at(1, out);
        }
    }

    fn len(&self) -> u64 {
        self.n
    }

    fn rank(&self, y: &T) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .map(|(h, l)| (l.count_le_with(&self.arena, y, self.accuracy) as u64) << h)
            .sum()
    }

    fn quantile(&self, q: f64) -> Option<T> {
        self.sorted_view().quantile(q).cloned()
    }
}

impl<T> SpaceUsage for HalvingSketch<T> {
    fn retained(&self) -> usize {
        self.levels.iter().map(|l| l.len(&self.arena)).sum()
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.arena.arena_bytes()
            + self.levels.len() * std::mem::size_of::<RelativeCompactor<T>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_compaction_halves() {
        let mut s = HalvingSketch::<u64>::new(8, RankAccuracy::LowRank, 1);
        for i in 0..10_000u64 {
            s.update(i);
        }
        for level in &s.levels {
            // every level compacts at exactly B with L = B/2; stats agree
            assert_eq!(level.num_sections(), 1);
            assert_eq!(level.section_size(), 8);
        }
        assert_eq!(s.total_weight(), 10_000);
    }

    #[test]
    fn space_grows_logarithmically_with_n() {
        let mut s = HalvingSketch::<u64>::new(32, RankAccuracy::LowRank, 2);
        for i in 0..1_000_000u64 {
            s.update(i.wrapping_mul(48271));
        }
        // ~B items per level, ~log2(n/B) levels
        let bound = s.level_capacity() * (s.num_levels() + 1);
        assert!(s.retained() <= bound);
        assert!(s.num_levels() <= 16);
    }

    #[test]
    fn low_ranks_protected_like_req() {
        let mut s = HalvingSketch::<u64>::new(64, RankAccuracy::LowRank, 3);
        let n = 100_000u64;
        for i in 0..n {
            s.update(i.wrapping_mul(2654435761) % n);
        }
        // bottom half of level 0 never compacted → tiny ranks exact
        assert_eq!(s.rank(&10), 11);
    }

    #[test]
    fn from_eps_sets_quadratic_buffer() {
        let s = HalvingSketch::<u64>::from_eps(0.1, RankAccuracy::LowRank, 4);
        assert_eq!(s.level_capacity(), 200); // 2 * ceil(1/0.01)
        let s = HalvingSketch::<u64>::from_eps(0.05, RankAccuracy::LowRank, 4);
        assert_eq!(s.level_capacity(), 800);
    }

    #[test]
    fn accuracy_reasonable_at_matching_eps() {
        let eps = 0.1;
        let mut s = HalvingSketch::<u64>::from_eps(eps, RankAccuracy::LowRank, 5);
        let n = 1u64 << 17;
        for i in 0..n {
            s.update(i.wrapping_mul(2654435761) % n);
        }
        for y in [1_000u64, 10_000, 100_000] {
            let err = (s.rank(&y) as f64 - (y + 1) as f64).abs();
            assert!(
                err <= 3.0 * eps * (y + 1) as f64 + 1.0,
                "rank({y}) err {err}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "half must be even and >= 4")]
    fn rejects_odd_half() {
        let _ = HalvingSketch::<u64>::new(7, RankAccuracy::LowRank, 0);
    }
}
