//! The merging t-digest (Dunning & Ertl) — reference \[7\] of the REQ paper.
//!
//! t-digest clusters the input into centroids whose maximum weight shrinks
//! toward the distribution's ends, via the scale function
//! `k₁(q) = (δ/2π)·asin(2q−1)`: a centroid may absorb items only while the
//! `k₁` span of its quantile range stays below 1. This biases precision
//! toward the tails — the same goal as REQ — but, as the paper notes
//! (§1.1), "they provide no formal accuracy analysis"; E12 probes where the
//! heuristic drifts.
//!
//! This is the *merging* variant: incoming values buffer, and a periodic
//! merge pass re-clusters buffer + centroids in one sorted sweep.

use sketch_traits::{MergeableSketch, QuantileSketch, SpaceUsage};

/// One cluster: mean value and item count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Centroid {
    /// Weighted mean of the absorbed items.
    pub mean: f64,
    /// Number of absorbed items.
    pub weight: u64,
}

/// Merging t-digest.
#[derive(Debug, Clone)]
pub struct TDigest {
    compression: f64,
    centroids: Vec<Centroid>,
    buffer: Vec<f64>,
    buffer_cap: usize,
    n: u64,
    min: f64,
    max: f64,
}

impl TDigest {
    /// New digest; `compression` (the paper's δ) bounds the centroid count —
    /// 100 is the common default.
    pub fn new(compression: f64) -> Self {
        assert!(compression >= 10.0, "compression must be >= 10");
        TDigest {
            compression,
            centroids: Vec::new(),
            buffer: Vec::new(),
            buffer_cap: (8.0 * compression) as usize,
            n: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The δ parameter.
    pub fn compression(&self) -> f64 {
        self.compression
    }

    /// Current number of centroids (after flushing internal buffers).
    pub fn num_centroids(&self) -> usize {
        self.merged().len()
    }

    fn k1(&self, q: f64) -> f64 {
        self.compression / (2.0 * std::f64::consts::PI) * (2.0 * q - 1.0).clamp(-1.0, 1.0).asin()
    }

    fn k1_inv(&self, k: f64) -> f64 {
        ((2.0 * std::f64::consts::PI * k / self.compression).sin() + 1.0) / 2.0
    }

    /// One merge pass over sorted `(mean, weight)` pairs (Algorithm 1 of the
    /// t-digest paper).
    fn merge_pass(&self, mut input: Vec<Centroid>) -> Vec<Centroid> {
        input.retain(|c| c.weight > 0);
        if input.is_empty() {
            return input;
        }
        input.sort_by(|a, b| a.mean.total_cmp(&b.mean));
        let total: u64 = input.iter().map(|c| c.weight).sum();
        let mut out: Vec<Centroid> = Vec::new();
        let mut cur = input[0];
        let mut q0 = 0.0f64;
        let mut q_limit = self.k1_inv(self.k1(q0) + 1.0);
        for next in input.into_iter().skip(1) {
            let q = q0 + (cur.weight + next.weight) as f64 / total as f64;
            if q <= q_limit {
                // absorb: weighted mean
                let w = cur.weight + next.weight;
                cur.mean =
                    (cur.mean * cur.weight as f64 + next.mean * next.weight as f64) / w as f64;
                cur.weight = w;
            } else {
                q0 += cur.weight as f64 / total as f64;
                q_limit = self.k1_inv(self.k1(q0) + 1.0);
                out.push(cur);
                cur = next;
            }
        }
        out.push(cur);
        out
    }

    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut input = self.centroids.clone();
        input.extend(
            self.buffer
                .drain(..)
                .map(|x| Centroid { mean: x, weight: 1 }),
        );
        self.centroids = self.merge_pass(input);
    }

    /// Centroids including any still-buffered values (used by queries so
    /// they can run on `&self`).
    fn merged(&self) -> Vec<Centroid> {
        if self.buffer.is_empty() {
            return self.centroids.clone();
        }
        let mut input = self.centroids.clone();
        input.extend(self.buffer.iter().map(|&x| Centroid { mean: x, weight: 1 }));
        self.merge_pass(input)
    }

    /// Observe a raw value.
    pub fn update_f64(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.buffer.push(x);
        if self.buffer.len() >= self.buffer_cap {
            self.flush();
        }
    }

    /// Quantile estimate: the mean of the centroid whose weight span covers
    /// the target rank (exact at the endpoints via tracked min/max).
    pub fn quantile_f64(&self, q: f64) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        let cs = self.merged();
        let target = q * self.n as f64;
        let mut cum = 0.0;
        for c in &cs {
            cum += c.weight as f64;
            if cum >= target {
                return Some(c.mean.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Rank estimate: total weight of centroids with mean ≤ y (tail
    /// centroids have weight 1, so extreme ranks are near-exact).
    pub fn rank_f64(&self, y: f64) -> u64 {
        let cs = self.merged();
        cs.iter().filter(|c| c.mean <= y).map(|c| c.weight).sum()
    }
}

impl QuantileSketch<f64> for TDigest {
    fn update(&mut self, item: f64) {
        self.update_f64(item);
    }

    fn len(&self) -> u64 {
        self.n
    }

    fn rank(&self, item: &f64) -> u64 {
        self.rank_f64(*item)
    }

    fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile_f64(q)
    }
}

impl MergeableSketch for TDigest {
    fn merge(&mut self, mut other: Self) {
        other.flush();
        self.flush();
        let mut input = std::mem::take(&mut self.centroids);
        input.extend(other.centroids);
        self.centroids = self.merge_pass(input);
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl SpaceUsage for TDigest {
    fn retained(&self) -> usize {
        self.centroids.len() + self.buffer.len()
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.centroids.capacity() * std::mem::size_of::<Centroid>()
            + self.buffer.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64, compression: f64) -> TDigest {
        let mut t = TDigest::new(compression);
        // pseudo-random permutation of 1..=n
        let m = n.next_power_of_two();
        let mut count = 0u64;
        let mut i = 0u64;
        while count < n {
            let v = (i.wrapping_mul(2654435761)) % m;
            i += 1;
            if v < n {
                t.update_f64((v + 1) as f64);
                count += 1;
            }
        }
        t
    }

    #[test]
    fn centroid_count_bounded_by_compression() {
        let t = filled(200_000, 100.0);
        assert!(
            t.num_centroids() <= 2 * 100,
            "{} centroids",
            t.num_centroids()
        );
    }

    #[test]
    fn weight_is_conserved() {
        let t = filled(50_000, 100.0);
        let total: u64 = t.merged().iter().map(|c| c.weight).sum();
        assert_eq!(total, 50_000);
    }

    #[test]
    fn median_is_close() {
        let t = filled(100_000, 200.0);
        let med = t.quantile_f64(0.5).unwrap();
        assert!((med - 50_000.0).abs() < 2_000.0, "median {med}");
    }

    #[test]
    fn tails_are_tight() {
        let t = filled(100_000, 200.0);
        let p999 = t.quantile_f64(0.999).unwrap();
        assert!((p999 - 99_900.0).abs() < 300.0, "p99.9 {p999} (true 99900)");
        assert_eq!(t.quantile_f64(0.0), Some(1.0));
        assert_eq!(t.quantile_f64(1.0), Some(100_000.0));
    }

    #[test]
    fn tail_centroids_are_much_smaller_than_bulk() {
        // The k1 scale function caps a cluster at roughly δ·q(1−q)·n /
        // (slope) — near the ends the asin slope diverges, so edge clusters
        // are orders of magnitude lighter than mid-bulk clusters.
        let t = filled(100_000, 100.0);
        let cs = t.merged();
        let first = cs.first().unwrap().weight;
        let last = cs.last().unwrap().weight;
        let mid = cs[cs.len() / 2].weight;
        assert!(first <= 200, "first centroid weight {first}");
        assert!(last <= 200, "last centroid weight {last}");
        assert!(mid > 1000, "bulk centroid weight {mid}");
        assert!(mid / first.max(1) >= 10);
    }

    #[test]
    fn ranks_are_monotone() {
        let t = filled(50_000, 100.0);
        let mut prev = 0;
        for y in (0..50_000).step_by(777) {
            let r = t.rank_f64(y as f64);
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn merge_preserves_count_and_accuracy() {
        let mut a = TDigest::new(100.0);
        let mut b = TDigest::new(100.0);
        for i in 1..=50_000u64 {
            a.update_f64(i as f64);
            b.update_f64((i + 50_000) as f64);
        }
        a.merge(b);
        assert_eq!(a.len(), 100_000);
        let med = a.quantile_f64(0.5).unwrap();
        assert!((med - 50_000.0).abs() < 3_000.0, "median {med}");
    }

    #[test]
    fn empty_and_nonfinite() {
        let mut t = TDigest::new(50.0);
        assert_eq!(t.quantile_f64(0.5), None);
        t.update_f64(f64::NAN);
        t.update_f64(f64::INFINITY);
        assert_eq!(t.len(), 0);
        t.update_f64(1.5);
        assert_eq!(t.len(), 1);
        assert_eq!(t.quantile_f64(0.5), Some(1.5));
    }

    #[test]
    fn scale_function_roundtrips() {
        let t = TDigest::new(100.0);
        for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let rt = t.k1_inv(t.k1(q));
            assert!((rt - q).abs() < 1e-9, "k1 roundtrip at {q}: {rt}");
        }
    }
}
