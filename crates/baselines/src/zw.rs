//! Deterministic relative-error summary at the Zhang–Wang bound
//! (`O(ε⁻¹·log³(εn))`, reference \[21\] of the REQ paper).
//!
//! Rather than re-deriving Zhang–Wang's multi-level merge-and-prune
//! structure, this module takes the route the REQ paper itself proves in
//! Appendix C: running the REQ sketch with
//! `k = 2⁴·⌈ε⁻¹·log₂(εn)⌉` makes the *entire* error analysis hold with
//! probability 1 — for every outcome of the compaction coin flips — at the
//! same `O(ε⁻¹·log³(εn))` space as \[21\]. ("It is easily seen ... that the
//! entire analysis holds with probability 1", App. C.) So the guarantee is
//! deterministic even though coins are still flipped internally.

use req_core::{ParamPolicy, RankAccuracy, ReqError, ReqSketch};
use sketch_traits::{QuantileSketch, SpaceUsage};

/// Deterministic-guarantee relative-error sketch (Appendix C / Zhang–Wang
/// regime). Requires an upper bound on the stream length, exactly as \[21\]'s
/// arbitrary-merge mode does.
#[derive(Debug, Clone)]
pub struct DeterministicRelativeSketch<T> {
    inner: ReqSketch<T>,
}

impl<T: Ord + Clone> DeterministicRelativeSketch<T> {
    /// New sketch with relative-error target `eps` for streams of length at
    /// most `n_max`.
    pub fn new(eps: f64, n_max: u64, accuracy: RankAccuracy, seed: u64) -> Result<Self, ReqError> {
        let policy = ParamPolicy::deterministic(eps, n_max)?;
        Ok(DeterministicRelativeSketch {
            inner: ReqSketch::with_policy(policy, accuracy, seed),
        })
    }

    /// Access the underlying REQ sketch (for stats/introspection).
    pub fn inner(&self) -> &ReqSketch<T> {
        &self.inner
    }
}

impl<T: Ord + Clone> QuantileSketch<T> for DeterministicRelativeSketch<T> {
    fn update(&mut self, item: T) {
        self.inner.update(item);
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn rank(&self, y: &T) -> u64 {
        self.inner.rank(y)
    }

    fn quantile(&self, q: f64) -> Option<T> {
        self.inner.quantile(q)
    }
}

impl<T> SpaceUsage for DeterministicRelativeSketch<T> {
    fn retained(&self) -> usize {
        self.inner.retained()
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_within_eps_for_every_seed() {
        // The Appendix C claim: the bound holds for ANY internal coin
        // sequence. We cannot enumerate all coin sequences, but we can check
        // many independent ones — none may violate the bound (contrast with
        // the randomized policy where a single probe has failure prob δ).
        let eps = 0.25;
        let n = 40_000u64;
        for seed in 0..10u64 {
            let mut s =
                DeterministicRelativeSketch::<u64>::new(eps, n, RankAccuracy::LowRank, seed)
                    .unwrap();
            for i in 0..n {
                s.update(i.wrapping_mul(2654435761) % n);
            }
            for y in [100u64, 1_000, 10_000, 39_999] {
                let true_rank = y + 1;
                let err = (s.rank(&y) as f64 - true_rank as f64).abs();
                assert!(
                    err <= eps * true_rank as f64 + 1.0,
                    "seed {seed}: rank({y}) err {err}"
                );
            }
        }
    }

    #[test]
    fn space_matches_zw_shape() {
        // k = 16·⌈ε⁻¹·log₂(εn)⌉ and B = 2k·⌈log₂(n/k)⌉ give the
        // O(ε⁻¹·log³(εn)) footprint of Zhang–Wang.
        let eps = 0.1;
        let n = 1u64 << 17;
        let mut s =
            DeterministicRelativeSketch::<u64>::new(eps, n, RankAccuracy::LowRank, 1).unwrap();
        for i in 0..n {
            s.update(i);
        }
        let eps_n = eps * n as f64;
        let bound = (1.0 / eps) * eps_n.log2().powi(3);
        // generous constant; the point is the shape, checked tighter in E9
        assert!(
            (s.retained() as f64) < 64.0 * bound,
            "retained {} vs shape bound {bound}",
            s.retained()
        );
        assert!(s.retained() > 0);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(
            DeterministicRelativeSketch::<u64>::new(0.0, 100, RankAccuracy::LowRank, 1).is_err()
        );
        assert!(DeterministicRelativeSketch::<u64>::new(0.1, 0, RankAccuracy::LowRank, 1).is_err());
    }
}
