//! Reservoir sampling (Vitter's Algorithm R) as a rank estimator.
//!
//! A uniform sample of `m = O(ε⁻²·log(1/δ))` items estimates every rank to
//! additive `εn` — but, as the REQ paper stresses in §1, **no sampling of
//! `o(n)` items can give multiplicative error**: an item of rank 10 in a
//! billion-item stream is simply never sampled. Experiment E1 includes this
//! baseline to make the contrast concrete.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sketch_traits::{QuantileSketch, SpaceUsage};

/// Fixed-size uniform reservoir over the stream.
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    capacity: usize,
    sample: Vec<T>,
    n: u64,
    rng: SmallRng,
}

impl<T: Ord + Clone> ReservoirSampler<T> {
    /// New reservoir holding at most `capacity` items.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReservoirSampler {
            capacity,
            sample: Vec::with_capacity(capacity),
            n: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Reservoir capacity `m`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current sample (unsorted).
    pub fn sample(&self) -> &[T] {
        &self.sample
    }
}

impl<T: Ord + Clone> QuantileSketch<T> for ReservoirSampler<T> {
    fn update(&mut self, item: T) {
        self.n += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(item);
        } else {
            let j = self.rng.gen_range(0..self.n);
            if (j as usize) < self.capacity {
                self.sample[j as usize] = item;
            }
        }
    }

    fn len(&self) -> u64 {
        self.n
    }

    /// Scaled sample rank: `|{x ∈ S : x ≤ y}|·n/m`.
    fn rank(&self, y: &T) -> u64 {
        if self.sample.is_empty() {
            return 0;
        }
        let c = self.sample.iter().filter(|x| *x <= y).count() as u64;
        ((c as u128 * self.n as u128) / self.sample.len() as u128) as u64
    }

    fn quantile(&self, q: f64) -> Option<T> {
        if self.sample.is_empty() {
            return None;
        }
        let mut sorted = self.sample.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        Some(sorted[idx].clone())
    }
}

impl<T> SpaceUsage for ReservoirSampler<T> {
    fn retained(&self) -> usize {
        self.sample.len()
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.sample.capacity() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_replaces() {
        let mut r = ReservoirSampler::<u64>::new(10, 1);
        for i in 0..10 {
            r.update(i);
        }
        assert_eq!(r.sample().len(), 10);
        for i in 10..1000 {
            r.update(i);
        }
        assert_eq!(r.sample().len(), 10);
        assert_eq!(r.len(), 1000);
    }

    #[test]
    fn sample_is_uniform_ish() {
        // Mean of a size-1000 sample of 0..100000 should be near 50000.
        let mut r = ReservoirSampler::<u64>::new(1000, 7);
        for i in 0..100_000u64 {
            r.update(i);
        }
        let mean: f64 = r.sample().iter().map(|&x| x as f64).sum::<f64>() / 1000.0;
        assert!((mean - 50_000.0).abs() < 5_000.0, "mean {mean}");
    }

    #[test]
    fn additive_error_at_bulk_ranks() {
        let mut r = ReservoirSampler::<u64>::new(4_000, 3);
        let n = 200_000u64;
        for i in 0..n {
            r.update(i.wrapping_mul(2654435761) % n);
        }
        for y in [n / 4, n / 2, 3 * n / 4] {
            let err = (r.rank(&y) as f64 - (y + 1) as f64).abs();
            assert!(err < 0.05 * n as f64, "rank({y}) err {err}");
        }
    }

    #[test]
    fn cannot_resolve_low_ranks() {
        // The §1 impossibility in miniature: with m/n = 1/100, an item of
        // rank ~50 is estimated at multiples of 100 (or missed entirely) —
        // the relative error at low ranks is enormous.
        let mut r = ReservoirSampler::<u64>::new(1_000, 5);
        let n = 100_000u64;
        for i in 0..n {
            r.update(i);
        }
        // True rank is 50; granularity: any sampled count c maps to c*100.
        let est = r.rank(&49);
        assert_eq!(est % 100, 0);
    }

    #[test]
    fn quantile_from_sorted_sample() {
        let mut r = ReservoirSampler::<u64>::new(64, 11);
        for i in 0..64u64 {
            r.update(i);
        }
        assert_eq!(r.quantile(0.0), Some(0));
        assert_eq!(r.quantile(1.0), Some(63));
        assert_eq!(r.quantile(0.5), Some(31));
        let empty = ReservoirSampler::<u64>::new(8, 0);
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ReservoirSampler::<u64>::new(0, 0);
    }
}
