//! The offline-optimal relative-error summary (paper Appendix A, remark
//! after Theorem 15).
//!
//! > "an optimal summary consisting of O(ε⁻¹·log(εn)) items can be
//! > constructed offline. For ℓ = ε⁻¹, this summary stores all items of rank
//! > 1, …, 2ℓ appearing in the stream and assigns them weight one, stores
//! > every other item of rank between 2ℓ + 1 and 4ℓ and assigns them weight
//! > 2, stores every fourth item of rank between 4ℓ + 1 and 8ℓ and assigns
//! > them weight 4, and so forth."
//!
//! This is the information-theoretic yardstick: any (even offline,
//! non-comparison-based) summary needs `Ω(ε⁻¹·log(εn))` items (Theorem 15),
//! and this construction matches it. Experiment E14 measures how far the
//! streaming REQ sketch sits above it — the paper's `O(√log(εn))` gap.

use req_core::SortedView;
use sketch_traits::SpaceUsage;

/// Offline-optimal weighted coreset for relative-error rank queries.
#[derive(Debug, Clone)]
pub struct OfflineOptimalSummary {
    view: SortedView<u64>,
    eps: f64,
    n: u64,
}

impl OfflineOptimalSummary {
    /// Build from the full data (sorted internally). `eps ∈ (0, 1]`.
    pub fn build(items: &[u64], eps: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0,1]");
        let mut sorted = items.to_vec();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let ell = (1.0 / eps).ceil() as u64;

        let mut weighted: Vec<(u64, u64)> = Vec::new();
        // Phase i covers ranks (2^i·ℓ, 2^(i+1)·ℓ], storing every 2^i-th item
        // with weight 2^i; phase 0 covers ranks 1..=2ℓ exactly.
        let mut phase_start = 0u64; // exclusive rank where the phase begins
        let mut step = 1u64;
        while phase_start < n {
            let phase_end = if phase_start == 0 {
                2 * ell
            } else {
                2 * phase_start
            }
            .min(n);
            // within (phase_start, phase_end], take ranks start+step, +2step...
            let mut r = phase_start + step;
            while r <= phase_end {
                weighted.push((sorted[(r - 1) as usize], step));
                r += step;
            }
            // the tail of the phase may be cut by n: account the remainder
            // onto the final item so total weight is exactly n.
            let covered = phase_end - phase_start;
            let counted = (covered / step) * step;
            let remainder = covered - counted;
            if remainder > 0 {
                weighted.push((sorted[(phase_end - 1) as usize], remainder));
            }
            phase_start = phase_end;
            if phase_start >= 2 * ell {
                step *= 2;
            }
        }
        OfflineOptimalSummary {
            view: SortedView::from_weighted_items(weighted),
            eps,
            n,
        }
    }

    /// Configured ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Stream length summarized.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Estimated inclusive rank.
    pub fn rank(&self, y: u64) -> u64 {
        self.view.rank(&y)
    }

    /// Quantile query.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.view.quantile(q).copied()
    }

    /// The underlying weighted view.
    pub fn view(&self) -> &SortedView<u64> {
        &self.view
    }
}

impl SpaceUsage for OfflineOptimalSummary {
    fn retained(&self) -> usize {
        self.view.num_entries()
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.view.num_entries() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn permutation(n: u64) -> Vec<u64> {
        (0..n).collect()
    }

    #[test]
    fn total_weight_is_exactly_n() {
        for n in [10u64, 100, 1000, 65_536, 100_001] {
            let s = OfflineOptimalSummary::build(&permutation(n), 0.1);
            assert_eq!(s.view().total_weight(), n, "n={n}");
        }
    }

    #[test]
    fn size_is_ell_log_n() {
        let n = 1u64 << 20;
        let eps = 0.01;
        let s = OfflineOptimalSummary::build(&permutation(n), eps);
        let ell = 1.0 / eps;
        let bound = 2.0 * ell * ((eps * n as f64).log2() + 2.0);
        assert!(
            (s.retained() as f64) < bound,
            "{} items > bound {bound}",
            s.retained()
        );
        // and it's not trivially small either
        assert!((s.retained() as f64) > ell);
    }

    #[test]
    fn relative_error_bound_holds_everywhere() {
        let n = 1u64 << 16;
        let eps = 0.05;
        let s = OfflineOptimalSummary::build(&permutation(n), eps);
        for y in 0..n {
            let truth = y + 1;
            let err = s.rank(y).abs_diff(truth) as f64;
            assert!(
                err <= eps * truth as f64 + 1.0,
                "rank({y}): err {err} vs bound {}",
                eps * truth as f64
            );
        }
    }

    #[test]
    fn low_ranks_are_exact() {
        let s = OfflineOptimalSummary::build(&permutation(10_000), 0.1);
        // ranks 1..=2ℓ (= 20) stored exactly
        for y in 0..20u64 {
            assert_eq!(s.rank(y), y + 1);
        }
    }

    #[test]
    fn duplicates_and_tiny_inputs() {
        let s = OfflineOptimalSummary::build(&[], 0.1);
        assert_eq!(s.retained(), 0);
        assert_eq!(s.rank(5), 0);
        assert_eq!(s.quantile(0.5), None);

        let s = OfflineOptimalSummary::build(&[7, 7, 7], 0.5);
        assert_eq!(s.rank(7), 3);
        assert_eq!(s.rank(6), 0);
        assert_eq!(s.quantile(0.5), Some(7));
    }

    #[test]
    fn quantiles_are_monotone() {
        let s = OfflineOptimalSummary::build(&permutation(100_000), 0.02);
        let mut prev = 0;
        for i in 0..=20 {
            let q = s.quantile(i as f64 / 20.0).unwrap();
            assert!(q >= prev);
            prev = q;
        }
    }
}
