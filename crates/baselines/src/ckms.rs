//! The CKMS biased-quantiles summary (Cormode, Korn, Muthukrishnan,
//! Srivastava, ICDE 2005) — reference \[4\] of the REQ paper.
//!
//! A GK-style tuple summary whose invariant is rank-*proportional*:
//! `g + Δ ≤ f(r, n) = max(1, ⌊2εr⌋)`, aiming at relative error near low
//! ranks. The REQ paper (§1.1) recalls Zhang et al.'s observation that under
//! adversarial item ordering this summary "requires linear space to achieve
//! relative error for all ranks" — descending arrival keeps every new item at
//! rank 1 where `f` permits no compression, so tuples pile up. Experiment E6
//! measures exactly this blow-up against REQ's order-oblivious bound.

use sketch_traits::{QuantileSketch, SpaceUsage};

#[derive(Debug, Clone)]
struct Tuple<T> {
    v: T,
    g: u64,
    delta: u64,
}

/// CKMS biased-quantiles summary (low-rank-accurate variant).
#[derive(Debug, Clone)]
pub struct CkmsSketch<T> {
    eps: f64,
    tuples: Vec<Tuple<T>>,
    n: u64,
    inserts_since_compress: u64,
}

impl<T: Ord + Clone> CkmsSketch<T> {
    /// New summary with relative-error target `eps ∈ (0, 1)`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        CkmsSketch {
            eps,
            tuples: Vec::new(),
            n: 0,
            inserts_since_compress: 0,
        }
    }

    /// Configured ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Current number of stored tuples (the quantity that blows up under
    /// adversarial orderings).
    pub fn num_tuples(&self) -> usize {
        self.tuples.len()
    }

    /// The biased invariant function `f(r) = max(1, ⌊2εr⌋)`.
    fn f(&self, r: u64) -> u64 {
        ((2.0 * self.eps * r as f64).floor() as u64).max(1)
    }

    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        // r_min of tuple i
        let mut r: Vec<u64> = Vec::with_capacity(self.tuples.len());
        let mut acc = 0;
        for t in &self.tuples {
            acc += t.g;
            r.push(acc);
        }
        let mut i = self.tuples.len() - 2;
        while i >= 1 {
            let merged_g = self.tuples[i].g + self.tuples[i + 1].g;
            if merged_g + self.tuples[i + 1].delta <= self.f(r[i]) {
                self.tuples[i + 1].g = merged_g;
                self.tuples.remove(i);
            }
            i -= 1;
        }
    }
}

impl<T: Ord + Clone> QuantileSketch<T> for CkmsSketch<T> {
    fn update(&mut self, item: T) {
        self.n += 1;
        let idx = self.tuples.partition_point(|t| t.v < item);
        let delta = if idx == 0 || idx == self.tuples.len() {
            0
        } else {
            // r_min of the predecessor
            let r: u64 = self.tuples[..idx].iter().map(|t| t.g).sum();
            self.f(r).saturating_sub(1)
        };
        self.tuples.insert(
            idx,
            Tuple {
                v: item,
                g: 1,
                delta,
            },
        );
        self.inserts_since_compress += 1;
        if self.inserts_since_compress as f64 >= 1.0 / (2.0 * self.eps) {
            self.compress();
            self.inserts_since_compress = 0;
        }
    }

    fn len(&self) -> u64 {
        self.n
    }

    fn rank(&self, y: &T) -> u64 {
        // Midpoint of [r_min(i), r_max(i+1) − 1]; the biased invariant keeps
        // the interval width below f(r) = 2εr, so the midpoint errs ≤ εr.
        let mut r_before = 0u64;
        for t in &self.tuples {
            if t.v <= *y {
                r_before += t.g;
            } else {
                return r_before + (t.g + t.delta) / 2;
            }
        }
        r_before
    }

    fn quantile(&self, q: f64) -> Option<T> {
        if self.tuples.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.n as f64).ceil() as u64).clamp(1, self.n);
        let mut r_before = 0u64;
        for t in &self.tuples {
            if r_before + (t.g + t.delta).div_ceil(2) >= target {
                return Some(t.v.clone());
            }
            r_before += t.g;
        }
        self.tuples.last().map(|t| t.v.clone())
    }
}

impl<T> SpaceUsage for CkmsSketch<T> {
    fn retained(&self) -> usize {
        self.tuples.len()
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.tuples.capacity() * std::mem::size_of::<Tuple<T>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn relative_error_on_random_order() {
        let eps = 0.02;
        let mut s = CkmsSketch::<u64>::new(eps);
        let n = 50_000u64;
        let mut items: Vec<u64> = (0..n).collect();
        items.shuffle(&mut SmallRng::seed_from_u64(1));
        for x in items {
            s.update(x);
        }
        for y in [10u64, 100, 1_000, 10_000, 49_000] {
            let true_rank = y + 1;
            let err = (s.rank(&y) as f64 - true_rank as f64).abs();
            // CKMS targets 2εr; allow constant slack on top.
            assert!(
                err <= 3.0 * eps * true_rank as f64 + 2.0,
                "rank({y}) err {err}"
            );
        }
    }

    #[test]
    fn space_reasonable_on_random_order() {
        let mut s = CkmsSketch::<u64>::new(0.05);
        let n = 100_000u64;
        let mut items: Vec<u64> = (0..n).collect();
        items.shuffle(&mut SmallRng::seed_from_u64(2));
        for x in items {
            s.update(x);
        }
        assert!(
            s.num_tuples() < (n as usize) / 10,
            "{} tuples",
            s.num_tuples()
        );
    }

    #[test]
    fn adversarial_order_blows_up_space() {
        // The §1.1 claim (observed by Zhang et al.): under adversarial
        // ordering CKMS needs linear space. The order: the maximum arrives
        // first, then everything else ascending. Each arrival is inserted
        // just below the max with Δ ≈ f(r) − 1 at a rank that never grows
        // (later items land *above* it), so the merge condition
        // g + g' + Δ' ≤ f(r) can never fire.
        let n = 20_000u64;
        let mut asc = CkmsSketch::<u64>::new(0.05);
        for i in 0..n {
            asc.update(i);
        }
        let mut adv = CkmsSketch::<u64>::new(0.05);
        adv.update(n); // the early outlier
        for i in 0..n {
            adv.update(i);
        }
        assert!(
            adv.num_tuples() > 10 * asc.num_tuples(),
            "adversarial {} vs ascending {}",
            adv.num_tuples(),
            asc.num_tuples()
        );
        assert!(
            adv.num_tuples() as f64 > 0.3 * n as f64,
            "expected near-linear blow-up, got {}",
            adv.num_tuples()
        );
    }

    #[test]
    fn low_ranks_are_tight() {
        let mut s = CkmsSketch::<u64>::new(0.01);
        let n = 30_000u64;
        let mut items: Vec<u64> = (0..n).collect();
        items.shuffle(&mut SmallRng::seed_from_u64(3));
        for x in items {
            s.update(x);
        }
        // rank 1 is exact (min tuple kept exactly)
        assert_eq!(s.rank(&0), 1);
        let err10 = (s.rank(&9) as f64 - 10.0).abs();
        assert!(err10 <= 2.0, "rank-10 err {err10}");
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut s = CkmsSketch::<u64>::new(0.02);
        let mut items: Vec<u64> = (0..50_000u64).collect();
        items.shuffle(&mut SmallRng::seed_from_u64(4));
        for x in items {
            s.update(x);
        }
        let mut prev = 0;
        for i in 0..=10 {
            let q = s.quantile(i as f64 / 10.0).unwrap();
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn empty_summary() {
        let s = CkmsSketch::<u64>::new(0.1);
        assert_eq!(s.rank(&3), 0);
        assert_eq!(s.quantile(0.9), None);
    }
}
