//! The Greenwald–Khanna summary (SIGMOD 2001) — the classic deterministic
//! **additive**-error quantile summary, reference \[10\] of the REQ paper.
//!
//! The summary is a sorted list of tuples `(v, g, Δ)`: `g` is the gap between
//! the minimum possible ranks of consecutive tuples, `Δ` the extra rank
//! uncertainty of `v`. The invariant `g + Δ ≤ 2εn` guarantees every rank is
//! answered within `εn`. GK stores `O(ε⁻¹·log(εn))` tuples — optimal among
//! deterministic comparison-based additive summaries (Cormode–Veselý).

use sketch_traits::{QuantileSketch, SpaceUsage};

#[derive(Debug, Clone)]
struct Tuple<T> {
    v: T,
    g: u64,
    delta: u64,
}

/// Greenwald–Khanna deterministic additive-error summary.
#[derive(Debug, Clone)]
pub struct GkSketch<T> {
    eps: f64,
    tuples: Vec<Tuple<T>>,
    n: u64,
    inserts_since_compress: u64,
}

impl<T: Ord + Clone> GkSketch<T> {
    /// New summary with additive-error target `eps ∈ (0, 1)`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        GkSketch {
            eps,
            tuples: Vec::new(),
            n: 0,
            inserts_since_compress: 0,
        }
    }

    /// Configured ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Current number of stored tuples.
    pub fn num_tuples(&self) -> usize {
        self.tuples.len()
    }

    fn threshold(&self) -> u64 {
        (2.0 * self.eps * self.n as f64).floor() as u64
    }

    /// Merge adjacent tuples whose combined uncertainty fits the invariant
    /// (`COMPRESS` in the paper).
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let threshold = self.threshold();
        let mut i = self.tuples.len() - 2;
        // never merge away the first (min) tuple
        while i >= 1 {
            let merged_g = self.tuples[i].g + self.tuples[i + 1].g;
            if merged_g + self.tuples[i + 1].delta <= threshold {
                self.tuples[i + 1].g = merged_g;
                self.tuples.remove(i);
            }
            i -= 1;
        }
    }
}

impl<T: Ord + Clone> QuantileSketch<T> for GkSketch<T> {
    fn update(&mut self, item: T) {
        self.n += 1;
        // position of the first tuple with v >= item
        let idx = self.tuples.partition_point(|t| t.v < item);
        let delta = if idx == 0 || idx == self.tuples.len() {
            0 // new minimum or maximum is known exactly
        } else {
            self.threshold().saturating_sub(1)
        };
        self.tuples.insert(
            idx,
            Tuple {
                v: item,
                g: 1,
                delta,
            },
        );
        self.inserts_since_compress += 1;
        if self.inserts_since_compress as f64 >= 1.0 / (2.0 * self.eps) {
            self.compress();
            self.inserts_since_compress = 0;
        }
    }

    fn len(&self) -> u64 {
        self.n
    }

    fn rank(&self, y: &T) -> u64 {
        // For y between tuples i and i+1 the true rank lies in
        // [r_min(i), r_max(i+1) − 1]; the invariant bounds that interval by
        // g_{i+1} + Δ_{i+1} ≤ 2εn, so the midpoint errs by at most εn.
        let mut r_before = 0u64; // r_min of the last tuple with v <= y
        for t in &self.tuples {
            if t.v <= *y {
                r_before += t.g;
            } else {
                return r_before + (t.g + t.delta) / 2;
            }
        }
        r_before // y >= max: exact
    }

    fn quantile(&self, q: f64) -> Option<T> {
        if self.tuples.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.n as f64).ceil() as u64).clamp(1, self.n);
        // Inverse of the midpoint rank estimator: first tuple whose midpoint
        // estimate reaches the target.
        let mut r_before = 0u64;
        for t in &self.tuples {
            if r_before + (t.g + t.delta).div_ceil(2) >= target {
                return Some(t.v.clone());
            }
            r_before += t.g;
        }
        self.tuples.last().map(|t| t.v.clone())
    }
}

impl<T> SpaceUsage for GkSketch<T> {
    fn retained(&self) -> usize {
        self.tuples.len()
    }

    fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.tuples.capacity() * std::mem::size_of::<Tuple<T>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariant<T: Ord + Clone>(s: &GkSketch<T>) {
        // g + Δ ≤ floor(2εn) + 1 (the +1 covers the freshly inserted tuple)
        let t = s.threshold() + 1;
        for tu in &s.tuples {
            assert!(tu.g + tu.delta <= t.max(1), "invariant violated");
        }
    }

    #[test]
    fn ranks_within_additive_eps_n() {
        let eps = 0.01;
        let mut s = GkSketch::<u64>::new(eps);
        let n = 50_000u64;
        for i in 0..n {
            s.update(i.wrapping_mul(2654435761) % n);
        }
        check_invariant(&s);
        for y in (0..n).step_by(997) {
            let err = (s.rank(&y) as f64 - (y + 1) as f64).abs();
            assert!(err <= eps * n as f64 + 1.0, "rank({y}) err {err}");
        }
    }

    #[test]
    fn deterministic_runs_are_identical() {
        let build = || {
            let mut s = GkSketch::<u64>::new(0.02);
            for i in 0..20_000u64 {
                s.update(i.wrapping_mul(48271) % 10_007);
            }
            (s.rank(&5000), s.num_tuples())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn space_is_sublinear() {
        let mut s = GkSketch::<u64>::new(0.01);
        let n = 200_000u64;
        for i in 0..n {
            s.update(i.wrapping_mul(16807) % n);
        }
        assert!(
            s.num_tuples() < (n as usize) / 20,
            "{} tuples",
            s.num_tuples()
        );
    }

    #[test]
    fn sorted_input_respects_bound() {
        let eps = 0.02;
        let mut s = GkSketch::<u64>::new(eps);
        let n = 30_000u64;
        for i in 0..n {
            s.update(i);
        }
        for y in (0..n).step_by(499) {
            let err = (s.rank(&y) as f64 - (y + 1) as f64).abs();
            assert!(err <= eps * n as f64 + 1.0, "rank({y}) err {err}");
        }
    }

    #[test]
    fn quantile_is_close() {
        let mut s = GkSketch::<u64>::new(0.01);
        let n = 100_000u64;
        for i in 0..n {
            s.update(i.wrapping_mul(2654435761) % n);
        }
        let med = s.quantile(0.5).unwrap();
        assert!(
            (med as f64 - n as f64 / 2.0).abs() < 0.05 * n as f64,
            "median {med}"
        );
    }

    #[test]
    fn extremes_are_exact() {
        let mut s = GkSketch::<u64>::new(0.05);
        for i in 100..1_100u64 {
            s.update(i);
        }
        assert_eq!(s.rank(&99), 0);
        assert_eq!(s.rank(&1_099), 1000);
        assert_eq!(s.quantile(0.0), Some(100));
    }

    #[test]
    fn empty_summary() {
        let s = GkSketch::<u64>::new(0.1);
        assert_eq!(s.rank(&1), 0);
        assert_eq!(s.quantile(0.5), None);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn rejects_bad_eps() {
        let _ = GkSketch::<u64>::new(0.0);
    }
}
