//! # `baselines` — every comparator from the REQ paper's related work
//!
//! The paper positions the REQ sketch against a landscape of prior summaries
//! (§1, §1.1). This crate implements that landscape from scratch so the
//! experiment harness can regenerate the comparisons:
//!
//! | Module | Algorithm | Guarantee | Paper role |
//! |---|---|---|---|
//! | [`kll`] | Karnin–Lang–Liberty compactor sketch \[12\] | additive `εn` | optimal additive sketch REQ builds on |
//! | [`gk`] | Greenwald–Khanna summary \[10\] | additive `εn`, deterministic | classic deterministic baseline |
//! | [`ckms`] | Cormode et al. biased quantiles \[4\] | relative, **order-sensitive** | needs linear space under adversarial order (§1.1) |
//! | [`zw`] | deterministic relative-error sketch \[21\] | relative, deterministic | Zhang–Wang bound via the paper's App. C reduction |
//! | [`halving`] | always-halve relative compactor | relative with `k ≈ 1/ε²` | §2.1 ablation; Zhang et al. \[22\] space regime |
//! | [`sampling`] | reservoir sampling | additive `εn` (w.h.p.) | why sampling can't give relative error (§1) |
//! | [`offline`] | offline-optimal coreset | relative, offline | the `Θ(ε⁻¹·log(εn))` yardstick of Appendix A |
//! | [`tdigest`] | merging t-digest \[7\] | none (heuristic) | "no formal accuracy analysis" (§1.1) |
//! | [`ddsketch`] | DDSketch \[15\] | relative **value** error | a different "relative error" notion (§1.1) |
//!
//! All implement [`sketch_traits::QuantileSketch`], so the harness treats
//! them interchangeably with the REQ sketch — including the batch trait
//! methods (`update_batch`, `ranks`, `quantiles`, `cdf`): KLL overrides
//! `update_batch` with a buffered fast path mirroring REQ's, while the
//! remaining baselines inherit the per-item defaults (their ingest is
//! inherently per-item), keeping harness comparisons apples-to-apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ckms;
pub mod ddsketch;
pub mod gk;
pub mod halving;
pub mod kll;
pub mod offline;
pub mod sampling;
pub mod tdigest;
pub mod zw;

pub use ckms::CkmsSketch;
pub use ddsketch::DdSketch;
pub use gk::GkSketch;
pub use halving::HalvingSketch;
pub use kll::KllSketch;
pub use offline::OfflineOptimalSummary;
pub use sampling::ReservoirSampler;
pub use tdigest::TDigest;
pub use zw::DeterministicRelativeSketch;
