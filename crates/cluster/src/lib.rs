//! # `req-cluster` — replicated, sharded multi-node quantile serving
//!
//! The cluster layer over the single-node req-server stack: N nodes,
//! each a primary with a warm standby, behind a consistent-hash router.
//! Three mechanisms, each leaning on an invariant the lower layers
//! already proved:
//!
//! * **[`HashRing`] + [`Router`]** — tenant keys map to nodes by
//!   consistent hashing over *names* (64 vnodes/node, deterministic
//!   across processes); the router speaks the pipelined binary protocol
//!   and stamps idempotency tokens itself, so a retry re-sent after a
//!   failover reuses the token the dying primary saw.
//! * **[`TailShipper`]** — WAL-tail shipping. A follower pulls the
//!   primary's WAL frames over `TAIL` and replays them byte-for-byte
//!   (`[append → apply]`, the primary's own order), mirroring snapshot
//!   rotations at the same record index. Result: the standby's data
//!   directory is **byte-identical** to the primary's at every shipped
//!   watermark — WAL files, snapshots, serialized sketch state, and the
//!   dedup windows that make post-failover retries exactly-once.
//! * **Scatter/gather `MERGE`** — a spread tenant ingests round-robin
//!   across all nodes; queries gather every node's serialized shards and
//!   combine them with `try_merge`, which the REQ sketch's full
//!   mergeability (paper Theorem 3) guarantees costs no accuracy beyond
//!   the merged sketch's own ε.
//!
//! Failover is three small moves — kill detected, standby promoted
//! (`set_follower(false)`), name repointed — and none of them touch ring
//! ownership, so no keys remap and no data shuffles. [`Cluster`] wires
//! all of it up in-process over real TCP sockets for the kill-the-primary
//! test plane (`e18_cluster_failover`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod ring;
pub mod router;
pub mod ship;

pub use cluster::{Cluster, Node, Replica};
pub use ring::{HashRing, VNODES_PER_NODE};
pub use router::Router;
pub use ship::TailShipper;
