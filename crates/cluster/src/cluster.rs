//! In-process cluster plane: N nodes, each a primary req-server with a
//! warm standby replica, behind one [`Router`] — plus the kill/promote
//! controls the failover tests and the `e18_cluster_failover` experiment
//! drive.
//!
//! Every node runs the real stack: a [`QuantileService`] on its own data
//! directory, served over the real evented binary server on a real TCP
//! socket, with a [`TailShipper`] pulling the primary's WAL into the
//! standby over that socket. "Kill" drops the primary's server and
//! service outright (the process-death analogue); "promote" stops the
//! standby's pump, flips it out of follower mode, and repoints the
//! node's name at the standby's address — ring ownership never moves.
//!
//! The only concession to testability is that everything lives in one
//! process, which is precisely what lets tests reach both sides' *data
//! directories* and assert the replication invariant that matters:
//! byte-identical durable state at every shipped watermark.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use req_core::ReqError;
use req_evented::{serve_evented, EventedHandle};
use req_service::tempdir::TempDir;
use req_service::{QuantileService, RetryPolicy, ServiceConfig};

use crate::router::Router;
use crate::ship::TailShipper;

/// How often a standby polls its primary once caught up.
const SHIP_POLL: Duration = Duration::from_millis(2);

/// One running replica: service + evented server + backing directory.
#[derive(Debug)]
pub struct Replica {
    /// The service; tests reach through this for watermark/state asserts.
    pub service: Arc<QuantileService>,
    server: EventedHandle,
    /// Owns the data directory (removed on drop).
    _dir: TempDir,
}

impl Replica {
    fn start(tag: &str, snapshot_every: u64) -> Result<Replica, ReqError> {
        let dir = TempDir::new(tag)?;
        let mut cfg = ServiceConfig::new(dir.path());
        cfg.snapshot_every_records = snapshot_every;
        let service = Arc::new(QuantileService::open(cfg)?);
        let server = serve_evented(Arc::clone(&service), "127.0.0.1:0", 1)?;
        Ok(Replica {
            service,
            server,
            _dir: dir,
        })
    }

    /// The replica's bound TCP address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }
}

/// One logical cluster node: a primary (until killed) and a warm standby
/// (until promoted).
#[derive(Debug)]
pub struct Node {
    /// Node name — the identity the hash ring knows.
    pub name: String,
    primary: Option<Replica>,
    standby: Option<Replica>,
    shipper: Option<TailShipper>,
}

/// An N-node replicated cluster behind a consistent-hash [`Router`].
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
    router: Router,
    policy: RetryPolicy,
}

impl Cluster {
    /// Start `names.len()` nodes, each with a warm standby shipping the
    /// primary's WAL, and a router over the primaries. Followers never
    /// snapshot on their own (`snapshot_every_records = 0`): they mirror
    /// the primary's rotations instead, which is what keeps the
    /// directories byte-identical.
    pub fn start(names: &[&str], policy: RetryPolicy) -> Result<Cluster, ReqError> {
        let mut nodes = Vec::with_capacity(names.len());
        let mut routes = Vec::with_capacity(names.len());
        for name in names {
            let primary = Replica::start(&format!("cl-{name}-p"), 0)?;
            let standby = Replica::start(&format!("cl-{name}-s"), 0)?;
            standby.service.set_follower(true);
            let shipper = TailShipper::start(
                Arc::clone(&standby.service),
                primary.addr(),
                policy.clone(),
                SHIP_POLL,
            );
            routes.push((name.to_string(), primary.addr()));
            nodes.push(Node {
                name: name.to_string(),
                primary: Some(primary),
                standby: Some(standby),
                shipper: Some(shipper),
            });
        }
        let router = Router::new(&routes, policy.clone());
        Ok(Cluster {
            nodes,
            router,
            policy,
        })
    }

    /// The routing front door.
    pub fn router(&mut self) -> &mut Router {
        &mut self.router
    }

    fn node(&self, name: &str) -> Result<&Node, ReqError> {
        self.nodes
            .iter()
            .find(|n| n.name == name)
            .ok_or_else(|| ReqError::InvalidParameter(format!("unknown node `{name}`")))
    }

    fn node_mut(&mut self, name: &str) -> Result<&mut Node, ReqError> {
        self.nodes
            .iter_mut()
            .find(|n| n.name == name)
            .ok_or_else(|| ReqError::InvalidParameter(format!("unknown node `{name}`")))
    }

    /// The live primary service of `name` (for test assertions).
    pub fn primary_service(&self, name: &str) -> Result<Arc<QuantileService>, ReqError> {
        self.node(name)?
            .primary
            .as_ref()
            .map(|r| Arc::clone(&r.service))
            .ok_or_else(|| ReqError::Unavailable(format!("node `{name}` primary is dead")))
    }

    /// The standby service of `name` (for test assertions).
    pub fn standby_service(&self, name: &str) -> Result<Arc<QuantileService>, ReqError> {
        self.node(name)?
            .standby
            .as_ref()
            .map(|r| Arc::clone(&r.service))
            .ok_or_else(|| ReqError::Unavailable(format!("node `{name}` has no standby")))
    }

    /// Block until `name`'s standby has replicated everything its
    /// primary has durably logged (watermark equality), or time out.
    pub fn drain(&self, name: &str, timeout: Duration) -> Result<(), ReqError> {
        let node = self.node(name)?;
        let (primary, standby) = match (&node.primary, &node.standby) {
            (Some(p), Some(s)) => (&p.service, &s.service),
            _ => {
                return Err(ReqError::Unavailable(format!(
                    "node `{name}` is not a primary/standby pair"
                )))
            }
        };
        let deadline = Instant::now() + timeout;
        loop {
            // Watermark equality alone is not enough: the follower
            // appends a frame before applying it, so the byte watermark
            // can match while the last apply is still in flight. The
            // applied-record counter closes that window.
            if primary.wal_watermark() == standby.wal_watermark()
                && primary.records_in_generation() == standby.records_in_generation()
            {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(ReqError::Unavailable(format!(
                    "standby of `{name}` did not catch up within {timeout:?}: \
                     primary at {:?}, standby at {:?}",
                    primary.wal_watermark(),
                    standby.wal_watermark()
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Kill `name`'s primary: server down, service dropped, directory
    /// removed. In-flight requests fail at the socket; the standby keeps
    /// serving reads at its replicated watermark.
    pub fn kill_primary(&mut self, name: &str) -> Result<(), ReqError> {
        let node = self.node_mut(name)?;
        let replica = node
            .primary
            .take()
            .ok_or_else(|| ReqError::Unavailable(format!("node `{name}` already dead")))?;
        replica.server.shutdown();
        Ok(())
    }

    /// Promote `name`'s standby: stop the replication pump, leave
    /// follower mode, become the node's primary, and repoint the router.
    /// The ring is untouched, so no keys remap; a client retrying a
    /// stamped mutation hits the replicated dedup window and applies
    /// exactly once.
    pub fn promote(&mut self, name: &str) -> Result<SocketAddr, ReqError> {
        let node = self.node_mut(name)?;
        let standby = node
            .standby
            .take()
            .ok_or_else(|| ReqError::Unavailable(format!("node `{name}` has no standby")))?;
        if let Some(shipper) = node.shipper.take() {
            shipper.stop();
        }
        standby.service.set_follower(false);
        let addr = standby.addr();
        node.primary = Some(standby);
        self.router.repoint(name, addr)?;
        req_telemetry::global()
            .counter("cluster_promotions_total")
            .inc();
        req_telemetry::global().event("node_promoted", format!("node={name} addr={addr}"));
        Ok(addr)
    }

    /// Attach a fresh warm standby to `name`'s current primary (e.g.
    /// after a promotion consumed the old one). The new standby starts
    /// empty and catches up by tailing from generation 0.
    pub fn attach_standby(&mut self, name: &str) -> Result<(), ReqError> {
        let policy = self.policy.clone();
        let node = self.node_mut(name)?;
        let primary_addr = node
            .primary
            .as_ref()
            .map(Replica::addr)
            .ok_or_else(|| ReqError::Unavailable(format!("node `{name}` primary is dead")))?;
        let standby = Replica::start(&format!("cl-{name}-s"), 0)?;
        standby.service.set_follower(true);
        let shipper = TailShipper::start(
            Arc::clone(&standby.service),
            primary_addr,
            policy,
            SHIP_POLL,
        );
        node.standby = Some(standby);
        node.shipper = Some(shipper);
        Ok(())
    }
}
