//! Consistent-hash ring with virtual nodes.
//!
//! Tenant keys are placed on a 64-bit ring; each node owns
//! [`VNODES_PER_NODE`] points on it, and a key belongs to the first node
//! point at or after the key's position (wrapping). Virtual nodes keep
//! ownership balanced — with `v` points per node the load spread is
//! `O(1/sqrt(v))` — and make membership changes cheap: adding or
//! removing one node of `n` remaps only about `1/n` of the keys, because
//! only the arcs ending at that node's points change hands.
//!
//! Everything here is deterministic from the member names alone: the key
//! hash is the service's own [`stable_key_hash`] (FNV-1a) and vnode
//! positions hash `name#i` the same way, both finished with a splitmix64
//! mix to spread FNV's weak low bits across the ring. Two processes that
//! agree on the member list agree on every key's owner — the property
//! that lets a router run on any machine with no coordination.

use std::collections::BTreeMap;

use req_service::stable_key_hash;

/// Ring points per node. 64 keeps the max/mean ownership ratio within
/// ~±15% for small clusters while membership changes stay O(v·log nv).
pub const VNODES_PER_NODE: usize = 64;

/// Finalizer from splitmix64: bijective, so it cannot introduce
/// collisions, and it decorrelates FNV's sequential low-bit patterns.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Position of `key` on the ring.
fn key_point(key: &str) -> u64 {
    mix(stable_key_hash(key))
}

/// Position of virtual node `i` of `name` on the ring.
fn vnode_point(name: &str, i: usize) -> u64 {
    mix(stable_key_hash(&format!("{name}#{i}")))
}

/// An immutable consistent-hash ring over a set of node names.
/// Membership changes build a new ring ([`HashRing::new`] is
/// `O(n·v·log(nv))`) — rings are small and rebuilds are rare (only on
/// node add/remove, *not* on failover, which repoints a name to a new
/// address without touching ownership).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring position → index into `names`. A `BTreeMap` gives the
    /// successor lookup directly via `range(point..)`.
    points: BTreeMap<u64, usize>,
    /// Member names, sorted; indices are stable for this ring instance.
    names: Vec<String>,
}

impl HashRing {
    /// Build a ring over `members` (dedup'd, sorted internally so the
    /// ring is a pure function of the member *set*). Panics if empty —
    /// a ring with nobody to own keys is a caller bug.
    pub fn new<S: AsRef<str>>(members: &[S]) -> HashRing {
        assert!(!members.is_empty(), "hash ring needs at least one node");
        let mut names: Vec<String> = members.iter().map(|s| s.as_ref().to_string()).collect();
        names.sort();
        names.dedup();
        let mut points = BTreeMap::new();
        for (idx, name) in names.iter().enumerate() {
            for i in 0..VNODES_PER_NODE {
                // On the astronomically unlikely 64-bit tie, the
                // lexicographically-first name keeps the point (insertion
                // order is sorted), keeping the ring deterministic.
                points.entry(vnode_point(name, i)).or_insert(idx);
            }
        }
        HashRing { points, names }
    }

    /// The node that owns `key`: first vnode point at or after the key's
    /// ring position, wrapping past the top.
    pub fn node_for(&self, key: &str) -> &str {
        let point = key_point(key);
        let idx = self
            .points
            .range(point..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, &idx)| idx)
            .expect("ring is never empty");
        &self.names[idx]
    }

    /// Member names, sorted.
    pub fn members(&self) -> &[String] {
        &self.names
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the ring has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Does the ring contain `name`?
    pub fn contains(&self, name: &str) -> bool {
        self.names
            .binary_search_by(|n| n.as_str().cmp(name))
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_deterministic_golden_values() {
        // Pinned outputs: any change to the hash, the mix, or the vnode
        // count is a wire-compatibility break for deployed routers and
        // must show up here as a test failure, not a silent remap.
        let ring = HashRing::new(&["alpha", "beta", "gamma"]);
        let got: Vec<&str> = ["k0", "k1", "k2", "latency", "orders.eu", "x"]
            .iter()
            .map(|k| ring.node_for(k))
            .collect();
        assert_eq!(got, ["alpha", "alpha", "gamma", "beta", "alpha", "alpha"]);
    }

    #[test]
    fn ring_is_a_function_of_the_member_set() {
        let a = HashRing::new(&["n2", "n0", "n1", "n1"]);
        let b = HashRing::new(&["n0", "n1", "n2"]);
        for i in 0..500 {
            let key = format!("key-{i}");
            assert_eq!(a.node_for(&key), b.node_for(&key));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = HashRing::new(&["n0", "n1", "n2", "n3"]);
        let mut counts = std::collections::HashMap::new();
        for i in 0..8_000 {
            *counts
                .entry(ring.node_for(&format!("key-{i}")))
                .or_insert(0) += 1;
        }
        for (&node, &c) in &counts {
            assert!((1_000..=3_000).contains(&c), "{node} owns {c} of 8000 keys");
        }
    }
}
