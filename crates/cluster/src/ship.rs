//! WAL-tail shipping: the pump that keeps a warm standby warm.
//!
//! A [`TailShipper`] runs next to a **follower** service and pulls the
//! primary's WAL over the binary protocol (`TAIL` frames), applying each
//! shipped slice locally via `replicate_frames` — append the identical
//! bytes, apply the identical record, in the identical order. When the
//! primary seals a generation (snapshot rotation), the segment comes
//! back `sealed` and the follower mirrors the rotation at the same
//! record index, which is what keeps the two data directories
//! **byte-identical**: same WAL files, same snapshots, same serialized
//! sketch state.
//!
//! Pull, not push: the follower knows its own watermark, so resuming
//! after any interruption (network fault, follower restart, torn
//! segment) is just "tail from where I am". A fault on the replication
//! socket can delay convergence — visible as [`TailShipper::lag`] — but
//! never corrupts: `replicate_frames` validates every frame before
//! appending, and a rejected slice is simply re-fetched.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use req_evented::ReqBinClient;
use req_service::{ClientApi, QuantileService, RetryPolicy};

/// Largest slice requested per `TAIL` round trip.
const TAIL_BUDGET: u32 = 1 << 20;

/// Handle to a background replication pump; stops and joins on drop.
#[derive(Debug)]
pub struct TailShipper {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    shipped: Arc<AtomicU64>,
    /// Generations the follower is behind, as of the last round trip.
    gens_behind: Arc<AtomicU64>,
    /// Consecutive failed round trips (connect, tail, or apply).
    errors_in_row: Arc<AtomicU64>,
}

impl TailShipper {
    /// Start pumping `primary` (its binary-protocol address) into the
    /// local `follower` service, polling every `poll` once caught up.
    /// The follower must already be in follower mode.
    pub fn start(
        follower: Arc<QuantileService>,
        primary: SocketAddr,
        policy: RetryPolicy,
        poll: Duration,
    ) -> TailShipper {
        let stop = Arc::new(AtomicBool::new(false));
        let shipped = Arc::new(AtomicU64::new(0));
        let gens_behind = Arc::new(AtomicU64::new(0));
        let errors_in_row = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let shipped = Arc::clone(&shipped);
            let gens_behind = Arc::clone(&gens_behind);
            let errors_in_row = Arc::clone(&errors_in_row);
            std::thread::spawn(move || {
                pump(
                    &follower,
                    primary,
                    &policy,
                    poll,
                    &stop,
                    &shipped,
                    &gens_behind,
                    &errors_in_row,
                );
            })
        };
        TailShipper {
            stop,
            handle: Some(handle),
            shipped,
            gens_behind,
            errors_in_row,
        }
    }

    /// Records applied on the follower since start.
    pub fn shipped_records(&self) -> u64 {
        self.shipped.load(Ordering::Relaxed)
    }

    /// Honest lag report: whole generations behind the primary at the
    /// last successful round trip, plus how many round trips in a row
    /// have failed (0 = healthy). A follower whose pump is erroring
    /// still *serves* — it just reports that its answers are stale.
    pub fn lag(&self) -> (u64, u64) {
        (
            self.gens_behind.load(Ordering::Relaxed),
            self.errors_in_row.load(Ordering::Relaxed),
        )
    }

    /// Stop the pump and join the thread.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TailShipper {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[allow(clippy::too_many_arguments)]
fn pump(
    follower: &QuantileService,
    primary: SocketAddr,
    policy: &RetryPolicy,
    poll: Duration,
    stop: &AtomicBool,
    shipped: &AtomicU64,
    gens_behind: &AtomicU64,
    errors_in_row: &AtomicU64,
) {
    // Global-registry mirrors of the shipper's own atomics, so lag is
    // visible over the wire (METRICS) and not only via the in-process
    // `TailShipper::lag` handle. Registered once per pump (cold path);
    // multiple shippers in one process sum into the same series.
    let telemetry = req_telemetry::global();
    let shipped_total = telemetry.counter("cluster_shipper_shipped_records_total");
    let lag_gauge = telemetry.gauge("cluster_shipper_gens_behind");
    let error_total = telemetry.counter("cluster_shipper_errors_total");
    let mut client: Option<ReqBinClient> = None;
    while !stop.load(Ordering::SeqCst) {
        let round = (|| -> Result<bool, req_core::ReqError> {
            if client.is_none() {
                client = Some(ReqBinClient::connect_with(primary, policy.clone())?);
            }
            let conn = client.as_mut().expect("just connected");
            let (generation, offset) = follower.wal_watermark();
            let seg = conn.tail_wal(generation, offset, TAIL_BUDGET)?;
            let behind = seg.latest_gen.saturating_sub(generation);
            gens_behind.store(behind, Ordering::Relaxed);
            lag_gauge.set(behind);
            if !seg.frames.is_empty() {
                let applied = follower.replicate_frames(&seg.frames)?;
                shipped.fetch_add(applied, Ordering::Relaxed);
                shipped_total.add(applied);
                return Ok(true);
            }
            if seg.sealed {
                // Primary rotated at exactly this record index; mirror it
                // so the shard-swap transitions line up byte-for-byte.
                follower.rotate_generation()?;
                return Ok(true);
            }
            Ok(false) // caught up
        })();
        match round {
            Ok(true) => {
                errors_in_row.store(0, Ordering::Relaxed);
            }
            Ok(false) => {
                errors_in_row.store(0, Ordering::Relaxed);
                std::thread::sleep(poll);
            }
            Err(_) => {
                // Dead primary, faulted socket, or a torn slice the
                // validator rejected: drop the connection, count the
                // failure (honest lag), and retry from the follower's
                // own watermark — partial progress is already durable.
                client = None;
                errors_in_row.fetch_add(1, Ordering::Relaxed);
                error_total.inc();
                std::thread::sleep(poll);
            }
        }
    }
}
