//! Key-routing front door for a cluster of req-servers.
//!
//! A [`Router`] owns a [`HashRing`] over the node *names* and a name →
//! address map. The separation is deliberate: failover promotes a warm
//! standby by **repointing the name** at the standby's address —
//! ownership on the ring never moves, so no keys remap and no cross-node
//! data shuffling happens on a node failure. Only genuine membership
//! changes (add/remove a node) rebuild the ring.
//!
//! The router speaks the pipelined binary protocol to each node through
//! one cached [`ReqBinClient`] per node and implements [`ClientApi`], so
//! it drops in anywhere a single-node client does. Idempotency tokens
//! are stamped **at the router** (one `client_id` for the router, not
//! per node connection): a mutation that failed ambiguously against a
//! dying primary can be re-sent verbatim to the promoted standby, and
//! because the standby replayed the primary's WAL — dedup windows
//! included — the retry applies exactly once. [`Router::stamp`] +
//! [`Router::call_stamped`] expose that replay loop directly.
//!
//! Keyless commands fan out: `LIST` unions all nodes' keys, `PING` and
//! `SNAPSHOT` touch every node. `QUIT` and `TAIL` are refused — one is
//! connection-scoped, the other node-scoped (a replication follower
//! tails *its* primary, not a hash ring).

use std::collections::HashMap;
use std::net::SocketAddr;

use req_core::{merge_wire_parts, OrdF64, ReqError, ReqSketch};
use req_evented::ReqBinClient;
use req_service::client::{attach_token, fresh_client_id};
use req_service::{ClientApi, Request, Response, RetryPolicy, TenantConfig};

use crate::ring::HashRing;

/// Routing front door over the cluster's current primaries.
#[derive(Debug)]
pub struct Router {
    ring: HashRing,
    addrs: HashMap<String, SocketAddr>,
    /// One cached connection per node name; dropped on repoint so the
    /// next call dials the promoted address.
    clients: HashMap<String, ReqBinClient>,
    policy: RetryPolicy,
    client_id: u64,
    next_seq: u64,
    /// Calls that failed against a node (connection dropped, retry will
    /// redial) — surfaced as `cluster_router_node_errors_total`.
    node_errors: req_telemetry::Counter,
    /// Failover repoints performed — `cluster_router_repoints_total`.
    repoints: req_telemetry::Counter,
}

impl Router {
    /// Build a router over `nodes` (name, current primary address).
    pub fn new(nodes: &[(String, SocketAddr)], policy: RetryPolicy) -> Router {
        let names: Vec<&str> = nodes.iter().map(|(n, _)| n.as_str()).collect();
        Router {
            ring: HashRing::new(&names),
            addrs: nodes.iter().cloned().collect(),
            clients: HashMap::new(),
            policy,
            client_id: fresh_client_id(),
            next_seq: 1,
            node_errors: req_telemetry::global().counter("cluster_router_node_errors_total"),
            repoints: req_telemetry::global().counter("cluster_router_repoints_total"),
        }
    }

    /// The id stamped into this router's idempotency tokens.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// The node name owning `key` under the current ring.
    pub fn node_for(&self, key: &str) -> &str {
        self.ring.node_for(key)
    }

    /// Current address of `name`.
    pub fn addr_of(&self, name: &str) -> Option<SocketAddr> {
        self.addrs.get(name).copied()
    }

    /// Member names, sorted.
    pub fn members(&self) -> &[String] {
        self.ring.members()
    }

    /// Failover: point `name` at a new address (the promoted standby).
    /// Ring ownership is untouched — no keys move. The cached connection
    /// to the old address is dropped; the next call dials fresh.
    pub fn repoint(&mut self, name: &str, addr: SocketAddr) -> Result<(), ReqError> {
        if !self.ring.contains(name) {
            return Err(ReqError::InvalidParameter(format!(
                "unknown cluster node `{name}`"
            )));
        }
        self.addrs.insert(name.to_string(), addr);
        self.clients.remove(name);
        self.repoints.inc();
        req_telemetry::global().event("router_repoint", format!("node={name} addr={addr}"));
        Ok(())
    }

    fn client(&mut self, name: &str) -> Result<&mut ReqBinClient, ReqError> {
        if !self.clients.contains_key(name) {
            let addr = self.addrs.get(name).copied().ok_or_else(|| {
                ReqError::InvalidParameter(format!("unknown cluster node `{name}`"))
            })?;
            let client = ReqBinClient::connect_with(addr, self.policy.clone())?;
            self.clients.insert(name.to_string(), client);
        }
        Ok(self.clients.get_mut(name).expect("just inserted"))
    }

    fn call_on(&mut self, name: &str, req: &Request) -> Result<Response, ReqError> {
        let name = name.to_string();
        let result = match self.client(&name) {
            Ok(conn) => conn.call(req),
            Err(e) => Err(e),
        };
        if result.is_err() {
            // Drop the connection: the node may be dead, and after a
            // repoint the retry must dial the promoted address, not
            // reuse a socket to the corpse.
            self.clients.remove(&name);
            self.node_errors.inc();
        }
        result
    }

    /// Stamp a mutation with the router's next idempotency token (noop
    /// for queries and pre-stamped requests). A stamped request is safe
    /// to [`Router::call_stamped`] any number of times across failovers:
    /// whichever node ends up owning the key dedups replays.
    pub fn stamp(&mut self, req: &mut Request) {
        attach_token(req, self.client_id, &mut self.next_seq);
    }

    /// Route an (already stamped) request without attaching a new token.
    /// This is the retry entry point: re-sending the *same* stamped
    /// request after a failover is exactly-once by construction.
    pub fn call_stamped(&mut self, req: &Request) -> Result<Response, ReqError> {
        match req {
            Request::Create { key, .. }
            | Request::Add { key, .. }
            | Request::AddBatch { key, .. }
            | Request::Rank { key, .. }
            | Request::Quantile { key, .. }
            | Request::Cdf { key, .. }
            | Request::Stats { key }
            | Request::Drop { key, .. }
            | Request::Merge { key } => {
                let node = self.ring.node_for(key).to_string();
                self.call_on(&node, req)
            }
            Request::List => {
                let mut keys = Vec::new();
                for name in self.members().to_vec() {
                    match self.call_on(&name, req)? {
                        Response::List(part) => keys.extend(part),
                        other => return Ok(other),
                    }
                }
                keys.sort();
                keys.dedup();
                Ok(Response::List(keys))
            }
            Request::Ping => {
                for name in self.members().to_vec() {
                    match self.call_on(&name, req)? {
                        Response::Pong => {}
                        other => return Ok(other),
                    }
                }
                Ok(Response::Pong)
            }
            Request::Snapshot => {
                let mut newest = 0;
                for name in self.members().to_vec() {
                    match self.call_on(&name, req)? {
                        Response::Snapshot(generation) => newest = newest.max(generation),
                        other => return Ok(other),
                    }
                }
                Ok(Response::Snapshot(newest))
            }
            Request::Metrics => {
                // Fan out: one exposition per node, stitched under
                // `# node <name>` headers so series with the same name
                // stay attributable to their origin.
                let mut joined = String::new();
                for name in self.members().to_vec() {
                    match self.call_on(&name, req)? {
                        Response::MetricsText(text) => {
                            joined.push_str(&format!("# node {name}\n"));
                            joined.push_str(&text);
                        }
                        other => return Ok(other),
                    }
                }
                Ok(Response::MetricsText(joined))
            }
            Request::Events { .. } => {
                let mut lines = Vec::new();
                for name in self.members().to_vec() {
                    match self.call_on(&name, req)? {
                        Response::Events(part) => {
                            lines.extend(part.into_iter().map(|line| format!("{name} {line}")));
                        }
                        other => return Ok(other),
                    }
                }
                Ok(Response::Events(lines))
            }
            Request::Quit => Err(ReqError::InvalidParameter(
                "QUIT is connection-scoped; the router owns its connections".into(),
            )),
            Request::Tail { .. } => Err(ReqError::InvalidParameter(
                "TAIL is node-scoped replication plumbing; address a node directly".into(),
            )),
        }
    }

    // -----------------------------------------------------------------
    // Spread tenants: one logical stream sharded over every node, read
    // back through scatter/gather MERGE (full mergeability, Theorem 3).
    // -----------------------------------------------------------------

    /// Create `key` on **every** node, for spread ingest. The per-node
    /// sketches share a config (same accuracy, same seed — they never
    /// meet on disk, so seed collisions are harmless).
    pub fn create_spread(&mut self, key: &str, config: TenantConfig) -> Result<(), ReqError> {
        for name in self.members().to_vec() {
            let mut req = Request::Create {
                key: key.to_string(),
                config: config.clone(),
                token: None,
            };
            self.stamp(&mut req);
            self.call_on(&name, &req)?.into_result()?;
        }
        Ok(())
    }

    /// Spread `values` for `key` round-robin across all nodes (one
    /// pipelined `ADDB` per node). Returns the total ingested.
    pub fn spread_add_batch(&mut self, key: &str, values: &[f64]) -> Result<u64, ReqError> {
        let members = self.members().to_vec();
        let mut total = 0;
        for (i, name) in members.iter().enumerate() {
            let part: Vec<f64> = values
                .iter()
                .copied()
                .skip(i)
                .step_by(members.len())
                .collect();
            if part.is_empty() {
                continue;
            }
            let mut req = Request::AddBatch {
                key: key.to_string(),
                values: part,
                token: None,
            };
            self.stamp(&mut req);
            match self.call_on(name, &req)?.into_result()? {
                Response::AddedBatch(n) => total += n,
                other => {
                    return Err(ReqError::InvalidParameter(format!(
                        "unexpected reply to ADDB: {other:?}"
                    )))
                }
            }
        }
        Ok(total)
    }

    /// Scatter/gather: fetch every node's serialized shard sketches for
    /// `key` and merge them into one combined sketch. The result answers
    /// rank/quantile queries over the **union** of all node-local
    /// streams with the merged sketch's ε guarantee.
    pub fn merged_sketch(&mut self, key: &str) -> Result<ReqSketch<OrdF64>, ReqError> {
        let req = Request::Merge {
            key: key.to_string(),
        };
        let mut parts: Vec<Vec<u8>> = Vec::new();
        for name in self.members().to_vec() {
            match self.call_on(&name, &req)?.into_result()? {
                Response::Merged(node_parts) => parts.extend(node_parts),
                other => {
                    return Err(ReqError::InvalidParameter(format!(
                        "unexpected reply to MERGE: {other:?}"
                    )))
                }
            }
        }
        merge_wire_parts(&parts)
    }

    /// Rank of `value` in the union stream, via [`Router::merged_sketch`].
    pub fn merged_rank(&mut self, key: &str, value: f64) -> Result<u64, ReqError> {
        Ok(self.merged_sketch(key)?.rank_f64(value))
    }

    /// Quantile of the union stream, via [`Router::merged_sketch`].
    pub fn merged_quantile(&mut self, key: &str, q: f64) -> Result<Option<f64>, ReqError> {
        Ok(self.merged_sketch(key)?.quantile_f64(q))
    }
}

impl ClientApi for Router {
    /// Stamp (mutations only) and route. For explicit retry control
    /// across failovers, use [`Router::stamp`] + [`Router::call_stamped`].
    fn call(&mut self, req: &Request) -> Result<Response, ReqError> {
        let mut req = req.clone();
        self.stamp(&mut req);
        self.call_stamped(&req)
    }
}
