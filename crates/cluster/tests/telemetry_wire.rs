//! The observability acceptance check: drive e18-style load through the
//! full stack — durable primary with fsync + group commit behind the
//! evented binary server, a follower pulling the WAL tail over TCP —
//! then ask the *wire* (`METRICS`/`EVENTS`) what happened. The series
//! the PR exists to expose must all be live and nonzero:
//!
//! * `service_wal_group_commit_coalesce` — appends acknowledged per
//!   leader fsync (the group-commit win, previously only in BENCH prose);
//! * `evented_frames_per_wakeup` — pipelining width per readiness
//!   wake-up, previously invisible outside the loop;
//! * `cluster_shipper_shipped_records_total` / `_gens_behind` — the
//!   shipper lag counters PR 9 kept in-process only.

use req_cluster::TailShipper;
use req_evented::{serve_evented, ReqBinClient};
use req_service::tempdir::TempDir;
use req_service::{
    Accuracy, ClientApi, QuantileService, Request, Response, RetryPolicy, ServiceConfig,
    TenantConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        max_retries: 6,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        seed: 11,
    }
}

fn tenant_config() -> TenantConfig {
    TenantConfig {
        accuracy: Accuracy::K(16),
        hra: true,
        schedule: req_core::CompactionSchedule::Standard,
        shards: 2,
        seed: 99,
    }
}

/// The value of series `name` in a rendered exposition (first sample
/// line wins; quantile-labelled lines don't match a bare name).
fn series(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let (n, v) = line.split_once(' ')?;
        (n == name).then(|| v.parse().expect("sample value parses"))
    })
}

#[test]
fn metrics_and_events_are_live_over_the_wire_under_load() {
    let pdir = TempDir::new("tel-p").unwrap();
    let fdir = TempDir::new("tel-f").unwrap();
    let mut pcfg = ServiceConfig::new(pdir.path());
    // The coalesce series only exists where fsync group commit runs.
    pcfg.fsync = true;
    pcfg.group_commit = true;
    let primary = Arc::new(QuantileService::open(pcfg).unwrap());
    let follower = Arc::new(QuantileService::open(ServiceConfig::new(fdir.path())).unwrap());
    follower.set_follower(true);

    let server = serve_evented(Arc::clone(&primary), "127.0.0.1:0", 1).unwrap();
    let shipper = TailShipper::start(
        Arc::clone(&follower),
        server.addr(),
        fast_policy(),
        Duration::from_millis(1),
    );

    // e18-style load: concurrent writers, batched ingest, one snapshot.
    // Concurrency is what makes one leader fsync cover several appends.
    let mut setup = ReqBinClient::connect_with(server.addr(), fast_policy()).unwrap();
    setup
        .call(&Request::Create {
            key: "tel.load".into(),
            config: tenant_config(),
            token: None,
        })
        .unwrap()
        .into_result()
        .unwrap();
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let addr = server.addr();
            std::thread::spawn(move || {
                let mut client = ReqBinClient::connect_with(addr, fast_policy()).unwrap();
                for batch in 0..40 {
                    let values: Vec<f64> = (0..64)
                        .map(|i| (w * 10_000 + batch * 64 + i) as f64)
                        .collect();
                    client
                        .call(&Request::AddBatch {
                            key: "tel.load".into(),
                            values,
                            token: None,
                        })
                        .unwrap()
                        .into_result()
                        .unwrap();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    match setup.call(&Request::Snapshot).unwrap() {
        Response::Snapshot(generation) => assert!(generation > 0),
        other => panic!("unexpected SNAPSHOT reply: {other:?}"),
    }

    // Let the shipper apply what the primary logged: one WAL record per
    // mutation — 1 CREATE + 4 writers × 40 batches = 161.
    let deadline = Instant::now() + Duration::from_secs(10);
    while shipper.shipped_records() < 161 {
        assert!(
            Instant::now() < deadline,
            "shipper stuck at {} records",
            shipper.shipped_records()
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    let text = setup.metrics().unwrap();
    // WAL + group commit: every series live, coalesce nonzero.
    assert!(
        series(&text, "service_wal_group_commit_coalesce_count").unwrap() > 0.0,
        "no group-commit coalesce samples in:\n{text}"
    );
    assert!(series(&text, "service_wal_append_micros_count").unwrap() > 0.0);
    assert!(series(&text, "service_wal_fsync_micros_count").unwrap() > 0.0);
    // Evented loop: frames-per-wakeup live, accepts counted.
    assert!(
        series(&text, "evented_frames_per_wakeup_count").unwrap() > 0.0,
        "no frames-per-wakeup samples in:\n{text}"
    );
    assert!(series(&text, "evented_accepts_total").unwrap() >= 5.0);
    // Shipper lag plane: records shipped over the wire, gauge present.
    assert!(
        series(&text, "cluster_shipper_shipped_records_total").unwrap() >= 161.0,
        "shipper counter missing or low in:\n{text}"
    );
    assert!(series(&text, "cluster_shipper_gens_behind").is_some());

    // The journal saw the snapshot rotation and the follower transition.
    let events = setup.events(256).unwrap();
    assert!(
        events.iter().any(|e| e.contains("snapshot_rotated")),
        "no snapshot_rotated event in {events:?}"
    );
    assert!(
        events.iter().any(|e| e.contains("follower_entered")),
        "no follower_entered event in {events:?}"
    );

    shipper.stop();
    server.shutdown();
}
