//! Replication over the real wire: byte-identity, rotation mirroring,
//! chaos on the replication socket, and the kill/promote failover plane.
//!
//! These tests run the full stack — evented binary server over TCP,
//! [`TailShipper`] pulling `TAIL` segments, `replicate_frames` replaying
//! them — and then reach *around* the wire to both data directories to
//! assert the invariant that defines this replication design: the
//! follower's durable state is **byte-identical** to the primary's at
//! every shipped watermark. Not "equivalent", not "close": the same WAL
//! bytes, the same snapshot bytes, the same serialized sketch state.

use req_cluster::{Cluster, TailShipper};
use req_evented::{serve_evented, serve_evented_with, EventedOptions};
use req_service::snapshot::{snapshot_path, wal_path};
use req_service::tempdir::TempDir;
use req_service::{
    ClientApi, FaultKind, FaultPlane, FaultSite, QuantileService, Request, RetryPolicy,
    ServiceConfig, TenantConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn open(dir: &std::path::Path) -> Arc<QuantileService> {
    Arc::new(QuantileService::open(ServiceConfig::new(dir)).unwrap())
}

/// A client retry policy tuned for tests: fail fast, retry hard.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        max_retries: 6,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        seed: 7,
    }
}

fn wait_caught_up(primary: &QuantileService, follower: &QuantileService, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    // Byte watermark AND applied-record count: the follower appends a
    // frame before applying it, so the byte watermark alone can match
    // while the last apply is still in flight on the shipper thread.
    while primary.wal_watermark() != follower.wal_watermark()
        || primary.records_in_generation() != follower.records_in_generation()
    {
        assert!(
            Instant::now() < deadline,
            "follower stuck at {:?}, primary at {:?}",
            follower.wal_watermark(),
            primary.wal_watermark()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn values(range: std::ops::Range<u64>) -> Vec<req_core::OrdF64> {
    range.map(|i| req_core::OrdF64(i as f64)).collect()
}

/// WAL-tail shipping over TCP reaches byte-identical durable state at
/// every shipped watermark, including across a primary snapshot
/// rotation (the follower mirrors the generation seal at the same
/// record index, so even the deterministic checkpoint shard-swap lines
/// up).
#[test]
fn wire_replication_is_byte_identical_across_rotation() {
    let pdir = TempDir::new("rep-p").unwrap();
    let fdir = TempDir::new("rep-f").unwrap();
    let primary = open(pdir.path());
    let follower = open(fdir.path());
    follower.set_follower(true);
    let server = serve_evented(Arc::clone(&primary), "127.0.0.1:0", 1).unwrap();
    let shipper = TailShipper::start(
        Arc::clone(&follower),
        server.addr(),
        fast_policy(),
        Duration::from_millis(1),
    );

    primary
        .create(
            "t",
            TenantConfig::parse("t", &["K=16", "SHARDS=2"]).unwrap(),
        )
        .unwrap();
    for step in 0..6u64 {
        primary
            .add_batch("t", &values(step * 1_500..(step + 1) * 1_500))
            .unwrap();
        if step == 2 {
            // Mid-stream rotation: snapshot + WAL generation seal.
            assert_eq!(primary.snapshot_now().unwrap(), 1);
        }
        wait_caught_up(&primary, &follower, Duration::from_secs(20));
        assert_eq!(
            follower.sketch_parts("t").unwrap(),
            primary.sketch_parts("t").unwrap(),
            "serialized sketch state diverged at step {step}"
        );
    }
    assert_eq!(shipper.lag(), (0, 0), "caught-up shipper must report so");
    shipper.stop();

    // Durable artifacts: every WAL generation and the snapshot are the
    // same bytes on both sides.
    for generation in 0..=1u64 {
        assert_eq!(
            std::fs::read(wal_path(pdir.path(), generation)).unwrap(),
            std::fs::read(wal_path(fdir.path(), generation)).unwrap(),
            "WAL generation {generation} diverged"
        );
    }
    assert_eq!(
        std::fs::read(snapshot_path(pdir.path(), 1)).unwrap(),
        std::fs::read(snapshot_path(fdir.path(), 1)).unwrap(),
        "snapshot bytes diverged"
    );

    // The follower restarts from its replicated directory like any
    // primary would — recovery accepts the shipped state wholesale.
    drop(follower);
    let reopened = open(fdir.path());
    assert_eq!(reopened.stats("t").unwrap().n, 9_000);
    assert_eq!(
        reopened.rank("t", 4_500.0).unwrap(),
        primary.rank("t", 4_500.0).unwrap()
    );
    server.shutdown();
}

/// Chaos on the replication socket: torn writes, dropped connections,
/// stalls, and injected latency between primary and follower. The
/// follower may fall behind (and must say so honestly via lag/error
/// counters), but it never applies garbage — every slice is validated
/// frame-by-frame before touching the WAL — and once the plane disarms
/// it converges to byte-identical state.
#[test]
fn chaos_on_replication_socket_converges_or_reports_lag() {
    let pdir = TempDir::new("chaos-p").unwrap();
    let fdir = TempDir::new("chaos-f").unwrap();
    let primary = open(pdir.path());
    let follower = open(fdir.path());
    follower.set_follower(true);
    let plane = Arc::new(
        FaultPlane::new(0xE18)
            .with(FaultSite::SockWrite, FaultKind::Torn, 1, 4)
            .with(FaultSite::SockRead, FaultKind::Error, 1, 7)
            .with(FaultSite::SockRead, FaultKind::Stall, 1, 5)
            .with(FaultSite::SockWrite, FaultKind::Delay(1), 1, 3),
    );
    let server = serve_evented_with(
        Arc::clone(&primary),
        "127.0.0.1:0",
        EventedOptions {
            loops: 1,
            faults: Some(Arc::clone(&plane)),
            ..EventedOptions::default()
        },
    )
    .unwrap();
    let shipper = TailShipper::start(
        Arc::clone(&follower),
        server.addr(),
        fast_policy(),
        Duration::from_millis(1),
    );

    primary.create("t", TenantConfig::for_key("t")).unwrap();
    for step in 0..10u64 {
        primary
            .add_batch("t", &values(step * 500..(step + 1) * 500))
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        // Mid-chaos honesty check: whatever prefix the follower has
        // applied is internally consistent — its count is a whole number
        // of replicated batches, and a rank probe agrees with it.
        let n = follower.stats("t").map(|s| s.n).unwrap_or(0);
        assert!(n <= (step + 1) * 500, "follower invented data: {n}");
        assert_eq!(n % 500, 0, "follower applied a partial batch: {n}");
        if n > 0 {
            // The shipper may land another batch between the two reads,
            // so the probe is monotone-consistent, not frozen-equal.
            let probed = follower.rank("t", f64::INFINITY).unwrap();
            assert!(
                probed >= n && probed.is_multiple_of(500),
                "rank {probed} vs n {n}"
            );
        }
    }
    assert!(plane.injected() > 0, "chaos plane never fired");

    // Disarm and let replication drain.
    plane.set_armed(false);
    wait_caught_up(&primary, &follower, Duration::from_secs(30));
    shipper.stop();
    assert_eq!(
        follower.sketch_parts("t").unwrap(),
        primary.sketch_parts("t").unwrap()
    );
    assert_eq!(
        std::fs::read(wal_path(pdir.path(), 0)).unwrap(),
        std::fs::read(wal_path(fdir.path(), 0)).unwrap()
    );
    server.shutdown();
}

/// Kill-the-primary failover through the router: drain, kill, promote,
/// then re-send the stamped in-flight mutation — it must apply exactly
/// once (the standby replicated the primary's dedup windows), and the
/// promoted node must answer queries for its keys.
#[test]
fn failover_promotes_standby_and_retries_are_exactly_once() {
    let mut cluster = Cluster::start(&["a", "b", "c"], fast_policy()).unwrap();

    // One tenant per node: pick keys until each node owns one.
    let mut keys: Vec<String> = Vec::new();
    for node in ["a", "b", "c"] {
        let key = (0..)
            .map(|i| format!("tenant-{i}"))
            .find(|k| cluster.router().node_for(k) == node)
            .unwrap();
        keys.push(key);
    }
    for key in &keys {
        let mut req = Request::Create {
            key: key.clone(),
            config: TenantConfig::for_key(key),
            token: None,
        };
        cluster.router().stamp(&mut req);
        cluster
            .router()
            .call_stamped(&req)
            .unwrap()
            .into_result()
            .unwrap();
        cluster
            .router()
            .call(&Request::AddBatch {
                key: key.clone(),
                values: (0..800).map(|i| i as f64).collect(),
                token: None,
            })
            .unwrap()
            .into_result()
            .unwrap();
    }

    // Stamp a mutation for the doomed node's tenant but don't send it
    // yet — this is the "in flight at the moment of death" request.
    let victim_key = keys
        .iter()
        .find(|k| cluster.router().node_for(k) == "b")
        .unwrap()
        .clone();
    let mut inflight = Request::AddBatch {
        key: victim_key.clone(),
        values: (800..1_000).map(|i| i as f64).collect(),
        token: None,
    };
    cluster.router().stamp(&mut inflight);
    // First delivery lands on the primary and replicates...
    cluster
        .router()
        .call_stamped(&inflight)
        .unwrap()
        .into_result()
        .unwrap();
    cluster.drain("b", Duration::from_secs(20)).unwrap();

    // ...then the primary dies and the standby takes over.
    cluster.kill_primary("b").unwrap();
    cluster.promote("b").unwrap();

    // The client, unsure whether its request survived, re-sends the
    // *same stamped request* — the replicated dedup window absorbs it.
    cluster
        .router()
        .call_stamped(&inflight)
        .unwrap()
        .into_result()
        .unwrap();
    let stats = match cluster
        .router()
        .call(&Request::Stats {
            key: victim_key.clone(),
        })
        .unwrap()
    {
        req_service::Response::Stats(s) => s,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(stats.n, 1_000, "retry after failover double-ingested");

    // Keys on surviving nodes were untouched by the failover.
    for key in keys.iter().filter(|k| *k != &victim_key) {
        let resp = cluster
            .router()
            .call(&Request::Rank {
                key: key.clone(),
                value: f64::INFINITY,
            })
            .unwrap()
            .into_result()
            .unwrap();
        assert_eq!(resp, req_service::Response::Rank(800));
    }
}

/// A standby attached after the fact (e.g. replacing one consumed by a
/// promotion) starts empty and catches all the way up from generation 0.
#[test]
fn late_attached_standby_catches_up_from_scratch() {
    let mut cluster = Cluster::start(&["solo"], fast_policy()).unwrap();
    let key = "k".to_string();
    cluster
        .router()
        .call(&Request::Create {
            key: key.clone(),
            config: TenantConfig::for_key(&key),
            token: None,
        })
        .unwrap()
        .into_result()
        .unwrap();
    cluster
        .router()
        .call(&Request::AddBatch {
            key: key.clone(),
            values: (0..2_000).map(|i| i as f64).collect(),
            token: None,
        })
        .unwrap()
        .into_result()
        .unwrap();
    cluster.drain("solo", Duration::from_secs(20)).unwrap();
    cluster.kill_primary("solo").unwrap();
    cluster.promote("solo").unwrap();

    // The promoted node keeps ingesting; a brand-new standby attaches
    // and replays the whole history it missed.
    cluster
        .router()
        .call(&Request::AddBatch {
            key: key.clone(),
            values: (2_000..3_000).map(|i| i as f64).collect(),
            token: None,
        })
        .unwrap()
        .into_result()
        .unwrap();
    cluster.attach_standby("solo").unwrap();
    cluster.drain("solo", Duration::from_secs(20)).unwrap();
    let primary = cluster.primary_service("solo").unwrap();
    let standby = cluster.standby_service("solo").unwrap();
    assert_eq!(
        standby.sketch_parts(&key).unwrap(),
        primary.sketch_parts(&key).unwrap()
    );
    assert_eq!(standby.stats(&key).unwrap().n, 3_000);
}
