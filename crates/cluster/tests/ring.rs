//! Property tests for the consistent-hash ring and the router built on
//! it.
//!
//! * **Stability** — removing one node of `n` remaps *only* the keys
//!   that node owned (an exact property of consistent hashing, not an
//!   approximation), and the remapped share stays near `1/n`; no key
//!   ever maps to a node outside the member set.
//! * **Determinism** — the ring is a pure function of the member *set*:
//!   any permutation or duplication of the member list yields the same
//!   ownership, and golden values in the crate pin the cross-process
//!   wire contract.
//! * **Router-vs-direct equivalence** — a random keyed command script
//!   answered through a 3-node routed cluster is response-for-response
//!   identical to the same script against one standalone node. Routing
//!   partitions tenants but never changes any tenant's answers, because
//!   a key's whole stream lands on one node and tenant seeds derive
//!   from the key, not the host.

use proptest::collection::vec;
use proptest::prelude::*;
use req_cluster::{Cluster, HashRing};
use req_evented::{serve_evented, ReqBinClient};
use req_service::tempdir::TempDir;
use req_service::{ClientApi, QuantileService, Request, RetryPolicy, ServiceConfig, TenantConfig};
use std::sync::Arc;

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("node-{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Removing a node remaps exactly the keys it owned — others keep
    /// their owner — and the remapped share is in the `~1/n` ballpark.
    #[test]
    fn removal_remaps_only_the_dead_nodes_keys(
        n in 2usize..8,
        dead_pick in any::<u64>(),
        key_seeds in vec(any::<u64>(), 200..400),
    ) {
        let members = names(n);
        let dead = (dead_pick as usize) % n;
        let survivors: Vec<String> = members
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != dead)
            .map(|(_, m)| m.clone())
            .collect();
        let full = HashRing::new(&members);
        let reduced = HashRing::new(&survivors);
        let mut remapped = 0usize;
        for seed in &key_seeds {
            let key = format!("tenant-{seed:x}");
            let before = full.node_for(&key);
            let after = reduced.node_for(&key);
            prop_assert!(
                survivors.iter().any(|s| s == after),
                "{key} mapped to non-member {after}"
            );
            if before == members[dead] {
                remapped += 1; // must move: its owner is gone
            } else {
                prop_assert_eq!(before, after, "{}'s surviving owner changed", key);
            }
        }
        // The dead node's share of keys concentrates around 1/n; give
        // wide slack for small samples (this is a sanity bound, the
        // exactness property above is the real invariant).
        let share = remapped as f64 / key_seeds.len() as f64;
        prop_assert!(
            share < 3.0 / n as f64,
            "removing 1 of {} nodes remapped {:.0}% of keys",
            n,
            share * 100.0
        );
    }

    /// Ownership is a pure function of the member set: permutations and
    /// duplicates of the member list change nothing.
    #[test]
    fn ring_ignores_member_list_order(
        n in 1usize..8,
        rotation in any::<usize>(),
        key_seeds in vec(any::<u64>(), 50..100),
    ) {
        let members = names(n);
        let mut shuffled = members.clone();
        shuffled.rotate_left(rotation % n.max(1));
        shuffled.push(members[rotation % n].clone()); // duplicate entry
        let a = HashRing::new(&members);
        let b = HashRing::new(&shuffled);
        prop_assert_eq!(a.members(), b.members());
        for seed in &key_seeds {
            let key = format!("k-{seed:x}");
            prop_assert_eq!(a.node_for(&key), b.node_for(&key));
        }
    }
}

/// Build a random keyed command script over a small key pool, so
/// duplicate creates, unknown-tenant queries, and drop/re-create races
/// all occur and their error replies must match too.
fn script(ops: &[(u8, u8, u64)]) -> Vec<Request> {
    let mut reqs = Vec::with_capacity(ops.len());
    for &(op, key_pick, bits) in ops {
        let key = format!("k{}", key_pick % 5);
        reqs.push(match op % 9 {
            0 => Request::Create {
                key: key.clone(),
                config: TenantConfig::for_key(&key),
                token: None,
            },
            1 => Request::Add {
                key,
                value: (bits % 10_000) as f64,
            },
            2 => Request::AddBatch {
                key,
                values: (0..1 + bits % 64)
                    .map(|i| (i * 37 % 9_973) as f64)
                    .collect(),
                token: None,
            },
            3 => Request::Rank {
                key,
                value: (bits % 10_000) as f64,
            },
            4 => Request::Quantile {
                key,
                q: (bits % 101) as f64 / 100.0,
            },
            5 => Request::Cdf {
                key,
                points: vec![(bits % 5_000) as f64, (5_000 + bits % 5_000) as f64],
            },
            6 => Request::Stats { key },
            7 => Request::Drop { key, token: None },
            _ => Request::List,
        });
    }
    reqs
}

proptest! {
    // Each case spins up four real servers; keep the count modest — the
    // script space is what varies, and 12 cases × ~60 commands covers
    // every verb many times over.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn router_equals_direct_single_node(
        ops in vec((any::<u8>(), any::<u8>(), any::<u64>()), 20..60),
    ) {
        let script = script(&ops);

        // Oracle: one standalone node holding every tenant.
        let dir = TempDir::new("ring-oracle").unwrap();
        let oracle = Arc::new(QuantileService::open(ServiceConfig::new(dir.path())).unwrap());
        let handle = serve_evented(Arc::clone(&oracle), "127.0.0.1:0", 1).unwrap();
        let mut direct = ReqBinClient::connect(handle.addr()).unwrap();

        // Routed: the same script through a 3-node cluster.
        let mut cluster = Cluster::start(&["a", "b", "c"], RetryPolicy::default()).unwrap();

        for (i, req) in script.iter().enumerate() {
            let via_direct = direct.call(req);
            let via_router = cluster.router().call(req);
            match (via_direct, via_router) {
                (Ok(d), Ok(r)) => prop_assert_eq!(
                    d, r, "step {} ({:?}) diverged between direct and routed", i, req
                ),
                (d, r) => panic!("step {i} ({req:?}): transport failure {d:?} vs {r:?}"),
            }
        }
        handle.shutdown();
    }
}
