//! Anchor crate for the repository-root `tests/` and `examples/`
//! directories. Those predate the Cargo workspace; this crate's manifest
//! maps each file to a `[[test]]` / `[[example]]` target so they stay
//! exactly where every doc reference expects them while still being built
//! and run by `cargo test` and `cargo build --examples`.
//!
//! The library itself is intentionally empty — all content lives in the
//! attached targets.
