//! Anchor crate for the repository-root `tests/` and `examples/`
//! directories. Those predate the Cargo workspace; this crate's manifest
//! maps each file to a `[[test]]` / `[[example]]` target so they stay
//! exactly where every doc reference expects them while still being built
//! and run by `cargo test` and `cargo build --examples`.
//!
//! The library itself carries no code — its only inline content is the
//! repository README below, included with `#[doc = include_str!(...)]` so
//! that **every `rust` code block in README.md compiles and runs as a
//! doctest** (`cargo test --doc -p req-integration`, part of the tier-1 CI
//! gate). A README snippet that rots now fails the build instead of
//! misleading readers.
//!
//! ---
#![doc = include_str!("../../../README.md")]
