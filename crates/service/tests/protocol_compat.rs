//! Property tests over the wire protocol: every [`Request`] and
//! [`Response`] the type system can express round-trips losslessly
//! through BOTH codecs (text lines and CRC-framed binary), and the two
//! codecs agree on what a message means.
//!
//! Scope notes baked into the generators:
//! * Keys are printable ASCII without spaces/quotes/backslashes — the
//!   registry's own key grammar, which is also what keeps the text
//!   protocol's whitespace-splitting unambiguous.
//! * `NaN` is excluded here (its text form drops the sign/payload bits);
//!   the binary codec's unit tests pin down bit-exact NaN transport.
//! * `AddBatch`/`Cdf` carry at least one value: the text protocol
//!   rejects empty payloads as malformed, by design.

use proptest::collection::vec;
use proptest::prelude::*;
use req_service::protocol::{binary, text};
use req_service::{
    Accuracy, ErrorKind, IdemToken, Request, RequestKind, Response, TenantConfig, TenantStats,
};

/// Key charset: a slice of the registry's legal alphabet.
fn mk_key(seed: u64) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
    let len = 1 + (seed % 16) as usize;
    let mut s = String::new();
    let mut x = seed | 1;
    for _ in 0..len {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        s.push(ALPHABET[(x % ALPHABET.len() as u64) as usize] as char);
    }
    s
}

/// Any f64 except NaN: reinterpret the bits, diverting NaNs to a large
/// finite value so infinities and both zeros stay reachable.
fn mk_f64(bits: u64) -> f64 {
    let v = f64::from_bits(bits);
    if v.is_nan() {
        (bits >> 11) as f64
    } else {
        v
    }
}

fn mk_f64s(bits: &[u64]) -> Vec<f64> {
    bits.iter().map(|&b| mk_f64(b)).collect()
}

/// Printable single-line message without edge whitespace (the text codec
/// hands back "rest of line", so padding cannot survive).
fn mk_msg(words: &[u64]) -> String {
    let s: String = words
        .iter()
        .map(|&w| char::from(0x20 + (w % 0x5f) as u8))
        .collect();
    s.trim().to_string()
}

fn mk_kind(choice: u64) -> ErrorKind {
    match choice % 6 {
        0 => ErrorKind::Invalid,
        1 => ErrorKind::Incompatible,
        2 => ErrorKind::Corrupt,
        3 => ErrorKind::Unavailable,
        4 => ErrorKind::Busy,
        _ => ErrorKind::Io,
    }
}

/// Roughly a third of mutations carry an idempotency token.
fn mk_token(seed: u64) -> Option<IdemToken> {
    (seed.is_multiple_of(3)).then_some(IdemToken {
        client_id: seed.rotate_left(17),
        seq: seed % 1_000,
    })
}

/// A buildable tenant configuration (the text decoder validates
/// eagerly, so draws must satisfy the sketch's parameter rules).
fn mk_config(acc_choice: u64, knob: f64, shards: u32, seed: u64) -> TenantConfig {
    TenantConfig {
        accuracy: if acc_choice.is_multiple_of(2) {
            Accuracy::K(4 + 2 * (acc_choice % 31) as u32)
        } else {
            Accuracy::EpsDelta(0.005 + knob * 0.09, 0.01 + knob * 0.2)
        },
        hra: acc_choice.rotate_left(13).is_multiple_of(2),
        schedule: if acc_choice.rotate_left(27).is_multiple_of(2) {
            req_core::CompactionSchedule::Adaptive
        } else {
            req_core::CompactionSchedule::Standard
        },
        shards: 1 + shards % 16,
        seed,
    }
}

fn mk_request(variant: u64, key_seed: u64, bits: &[u64], knob: f64) -> Request {
    let key = mk_key(key_seed);
    let at = |i: usize| bits.get(i).copied().unwrap_or(i as u64);
    let value = mk_f64(at(0));
    match variant % 16 {
        0 => Request::Create {
            key,
            config: mk_config(at(0), knob, at(1) as u32, at(2)),
            token: mk_token(at(3)),
        },
        1 => Request::Add { key, value },
        2 => Request::AddBatch {
            key,
            values: mk_f64s(bits),
            token: mk_token(at(1).rotate_left(7)),
        },
        3 => Request::Rank { key, value },
        4 => Request::Quantile { key, q: knob },
        5 => Request::Cdf {
            key,
            points: mk_f64s(bits),
        },
        6 => Request::Stats { key },
        7 => Request::List,
        8 => Request::Snapshot,
        9 => Request::Drop {
            key,
            token: mk_token(at(2).rotate_left(31)),
        },
        10 => Request::Ping,
        11 => Request::Quit,
        12 => Request::Tail {
            gen: at(0),
            offset: at(1),
            max_bytes: at(2) as u32,
        },
        13 => Request::Merge { key },
        14 => Request::Metrics,
        _ => Request::Events { max: at(0) as u32 },
    }
}

/// Arbitrary binary blob (hex-encoded on the text wire).
fn mk_blob(words: &[u64]) -> Vec<u8> {
    words.iter().map(|&w| (w % 256) as u8).collect()
}

fn mk_stats(words: &[u64]) -> TenantStats {
    TenantStats {
        n: words[0],
        retained: words[1],
        bytes: words[2],
        k: words[3] as u32,
        shards: words[4] as u32,
        hra: words[5].is_multiple_of(2),
        adaptive: words[6].is_multiple_of(2),
        rotation: words[7],
        snapshot_failures: words[0].rotate_left(9),
        wal_poisoned: words[1].rotate_left(23),
        shed: words[2].rotate_left(41),
        read_only: words[3].is_multiple_of(2),
    }
}

/// Arbitrary (possibly multi-line) exposition-style text: the telemetry
/// replies are the one place the wire carries newlines, which the text
/// codec must hex-armor onto a single line.
fn mk_text(words: &[u64]) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        out.push(char::from(0x20 + (w % 0x5f) as u8));
        if i % 7 == 3 {
            out.push('\n');
        }
    }
    out
}

fn mk_response(variant: u64, _key_seed: u64, bits: &[u64]) -> Response {
    match variant % 17 {
        0 => Response::Created,
        1 => Response::Added,
        2 => Response::AddedBatch(bits[0]),
        3 => Response::Rank(bits[0]),
        4 => Response::Quantile(if bits[0].is_multiple_of(4) {
            None
        } else {
            Some(mk_f64(bits[1]))
        }),
        5 => Response::Cdf(mk_f64s(&bits[..bits.len() % 8])),
        6 => Response::Stats(mk_stats(bits)),
        7 => Response::List((0..bits[0] % 8).map(|i| mk_key(bits[i as usize])).collect()),
        8 => Response::Snapshot(bits[0]),
        9 => Response::Dropped,
        10 => Response::Pong,
        11 => Response::Bye,
        12 => Response::Err {
            kind: mk_kind(bits[0]),
            msg: mk_msg(&bits[..bits.len() % 40]),
        },
        13 => Response::Tailed(req_service::TailSegment {
            gen: bits[0],
            offset: bits[0].rotate_left(19),
            sealed: bits[0].is_multiple_of(2),
            latest_gen: bits[0].rotate_left(37),
            frames: mk_blob(&bits[..bits.len() % 24]),
        }),
        14 => Response::Merged(
            bits.chunks(5)
                .take(bits[0] as usize % 4)
                .map(mk_blob)
                .collect(),
        ),
        15 => Response::MetricsText(mk_text(&bits[..bits.len() % 40])),
        _ => Response::Events(
            bits.chunks(6)
                .take(bits[0] as usize % 5)
                .map(mk_text)
                .collect(),
        ),
    }
}

/// The request kind a response answers — text decoding is positional, so
/// the decoder needs this context.
fn kind_for(resp: &Response) -> RequestKind {
    match resp {
        Response::Created => RequestKind::Create,
        Response::Added => RequestKind::Add,
        Response::AddedBatch(_) => RequestKind::AddBatch,
        Response::Rank(_) => RequestKind::Rank,
        Response::Quantile(_) => RequestKind::Quantile,
        Response::Cdf(_) => RequestKind::Cdf,
        Response::Stats(_) => RequestKind::Stats,
        Response::List(_) => RequestKind::List,
        Response::Snapshot(_) => RequestKind::Snapshot,
        Response::Dropped => RequestKind::Drop,
        Response::Pong => RequestKind::Ping,
        Response::Bye => RequestKind::Quit,
        Response::Tailed(_) => RequestKind::Tail,
        Response::Merged(_) => RequestKind::Merge,
        Response::MetricsText(_) => RequestKind::Metrics,
        Response::Events(_) => RequestKind::Events,
        // An error can answer anything; Ping exercises the strictest arm.
        Response::Err { .. } => RequestKind::Ping,
    }
}

fn deframe(framed: bytes::Bytes) -> bytes::Bytes {
    let (payload, used) = binary::try_deframe(&framed, 0)
        .expect("self-produced frame must verify")
        .expect("self-produced frame must be complete");
    assert_eq!(used, framed.len(), "no trailing bytes in one frame");
    payload
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_request_roundtrips_both_codecs(
        variant in any::<u64>(),
        key_seed in any::<u64>(),
        bits in vec(any::<u64>(), 1..40),
        knob in 0.0f64..1.0,
    ) {
        let req = mk_request(variant, key_seed, &bits, knob);

        let line = text::encode_request(&req);
        let via_text = text::decode_request(&line)
            .unwrap_or_else(|e| panic!("own text `{line}` must parse: {e:?}"));
        prop_assert_eq!(&via_text, &req);

        let framed = binary::encode_request(&req);
        let via_binary = binary::decode_request(deframe(framed)).expect("own frame must decode");
        prop_assert_eq!(&via_binary, &req);

        // Cross-codec agreement: a server cannot behave differently based
        // on which transport carried the command.
        prop_assert_eq!(&via_text, &via_binary);
    }

    #[test]
    fn every_response_roundtrips_both_codecs(
        variant in any::<u64>(),
        key_seed in any::<u64>(),
        bits in vec(any::<u64>(), 8..48),
    ) {
        let resp = mk_response(variant, key_seed, &bits);

        let line = text::encode_response(&resp);
        let via_text = text::decode_response(&line, kind_for(&resp))
            .unwrap_or_else(|e| panic!("own text `{line}` must parse: {e:?}"));
        prop_assert_eq!(&via_text, &resp);

        let framed = binary::encode_response(&resp);
        let via_binary = binary::decode_response(deframe(framed)).expect("own frame must decode");
        prop_assert_eq!(&via_binary, &resp);

        prop_assert_eq!(&via_text, &via_binary);
    }

    /// Error kinds survive both codecs and map back to the same
    /// [`req_core::ReqError`] variant either way.
    #[test]
    fn error_kinds_agree_across_codecs(
        choice in any::<u64>(),
        words in vec(any::<u64>(), 0..48),
    ) {
        let kind = mk_kind(choice);
        let resp = Response::Err { kind, msg: mk_msg(&words) };
        let t = text::decode_response(&text::encode_response(&resp), RequestKind::Ping).unwrap();
        let b = binary::decode_response(deframe(binary::encode_response(&resp))).unwrap();
        prop_assert_eq!(&t, &b);
        let (te, be) = (t.into_result().unwrap_err(), b.into_result().unwrap_err());
        prop_assert_eq!(ErrorKind::from(&te), kind);
        prop_assert_eq!(ErrorKind::from(&be), kind);
    }
}
