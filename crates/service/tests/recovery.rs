//! Crash-recovery properties.
//!
//! Two claims, proptested:
//!
//! 1. **WAL prefix integrity** — a WAL whose tail is truncated at an
//!    arbitrary byte, or corrupted by an arbitrary bit flip, replays to
//!    *exactly* the longest prefix of whole valid frames before the
//!    damage. Nothing after the damage is applied, nothing before it is
//!    lost.
//! 2. **Snapshot + replay ≡ fully streamed** — across HRA/LRA, both
//!    compaction schedules, and arbitrary batch/snapshot placements, a
//!    service that crashes (process drop, no shutdown hook) and recovers
//!    from snapshot + WAL tail answers rank/quantile/CDF queries
//!    **value-identically** to a twin service that executed the same ops
//!    and never crashed.

use proptest::collection::vec;
use proptest::prelude::*;

use req_core::OrdF64;
use req_service::tempdir::TempDir;
use req_service::wal::{read_wal, WalRecord, WalWriter, WAL_MAGIC};
use req_service::{QuantileService, ServiceConfig, TenantConfig};

fn records_from(batches: &[Vec<u64>]) -> Vec<WalRecord> {
    let mut records = vec![WalRecord::Create {
        key: "t".into(),
        config: TenantConfig::parse("t", &["K=8", "SHARDS=2"]).unwrap(),
        token: None,
    }];
    for batch in batches {
        records.push(WalRecord::AddBatch {
            key: "t".into(),
            values: batch.iter().map(|&v| OrdF64(v as f64)).collect(),
            token: None,
        });
    }
    records
}

/// The longest record prefix whose frames end at or before `boundary`.
fn expected_prefix(records: &[WalRecord], boundary: usize) -> (Vec<WalRecord>, u64) {
    let mut end = WAL_MAGIC.len();
    let mut keep = Vec::new();
    for rec in records {
        let next = end + rec.encode().len();
        if next > boundary {
            break;
        }
        end = next;
        keep.push(rec.clone());
    }
    (keep, end as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn truncated_wal_replays_to_exactly_the_last_valid_frame(
        batches in vec(vec(0u64..100_000, 1..60), 1..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = TempDir::new("prop-trunc").unwrap();
        let path = dir.path().join("wal-test.log");
        let records = records_from(&batches);
        let mut w = WalWriter::create(&path).unwrap();
        for rec in &records {
            w.append(&rec.encode()).unwrap();
        }
        drop(w);
        let full = std::fs::metadata(&path).unwrap().len() as usize;

        let cut = (cut_frac * full as f64) as usize;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut as u64)
            .unwrap();

        let replay = read_wal(&path).unwrap();
        if cut < WAL_MAGIC.len() {
            // Header gone: nothing replays, the whole remnant is damage.
            prop_assert!(replay.records.is_empty());
            prop_assert_eq!(replay.damaged_bytes, cut as u64);
        } else {
            let (want, valid_len) = expected_prefix(&records, cut);
            prop_assert_eq!(&replay.records, &want);
            prop_assert_eq!(replay.valid_len, valid_len);
            prop_assert_eq!(replay.damaged_bytes, cut as u64 - valid_len);
        }
    }

    #[test]
    fn bitflipped_wal_replays_to_exactly_the_frames_before_the_flip(
        batches in vec(vec(0u64..100_000, 1..60), 1..10),
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let dir = TempDir::new("prop-flip").unwrap();
        let path = dir.path().join("wal-test.log");
        let records = records_from(&batches);
        let mut w = WalWriter::create(&path).unwrap();
        for rec in &records {
            w.append(&rec.encode()).unwrap();
        }
        drop(w);
        let mut raw = std::fs::read(&path).unwrap();
        let pos = ((flip_frac * raw.len() as f64) as usize).min(raw.len() - 1);
        raw[pos] ^= 1 << flip_bit;
        std::fs::write(&path, &raw).unwrap();

        let replay = read_wal(&path).unwrap();
        if pos < WAL_MAGIC.len() {
            prop_assert!(replay.records.is_empty(), "flip in magic must void the file");
        } else {
            // Frames wholly before the flipped byte replay; the flipped
            // frame and everything after it do not.
            let (want, valid_len) = expected_prefix(&records, pos + 1);
            prop_assert_eq!(&replay.records, &want);
            prop_assert_eq!(replay.valid_len, valid_len);
            prop_assert!(replay.damaged_bytes > 0);
        }
    }
}

/// Drive `service` through the scripted ops: CREATE, then the batches,
/// with a forced snapshot after batch `snap_at` (if in range).
fn run_ops(
    service: &QuantileService,
    key: &str,
    tokens: &[&str],
    batches: &[Vec<f64>],
    snap_at: usize,
) {
    service
        .create(key, TenantConfig::parse(key, tokens).unwrap())
        .unwrap();
    for (i, batch) in batches.iter().enumerate() {
        let values: Vec<OrdF64> = batch.iter().copied().map(OrdF64).collect();
        service.add_batch(key, &values).unwrap();
        if i == snap_at {
            service.snapshot_now().unwrap();
        }
    }
}

fn probe(service: &QuantileService, key: &str) -> (Vec<u64>, Vec<Option<f64>>, Vec<f64>) {
    let ranks = (0..40)
        .map(|i| service.rank(key, i as f64 * 2_499.0).unwrap())
        .collect();
    let quantiles = (0..=10)
        .map(|i| service.quantile(key, i as f64 / 10.0).unwrap())
        .collect();
    let cdf = service.cdf(key, &[10_000.0, 50_000.0, 90_000.0]).unwrap();
    (ranks, quantiles, cdf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The satellite claim: snapshot + WAL replay equals the fully
    /// streamed service, value-identically, across HRA/LRA × schedules.
    #[test]
    fn crash_recovery_is_value_identical_to_uninterrupted(
        hra in any::<bool>(),
        adaptive in any::<bool>(),
        shards in 1u32..4,
        batches in vec(vec(0u64..100_000, 1..300), 2..8),
        snap_frac in 0.0f64..1.0,
    ) {
        let tokens = [
            "K=8",
            if hra { "HRA" } else { "LRA" },
            if adaptive { "SCHEDULE=adaptive" } else { "SCHEDULE=standard" },
            &format!("SHARDS={shards}"),
        ]
        .map(String::from);
        let tokens: Vec<&str> = tokens.iter().map(String::as_str).collect();
        let batches: Vec<Vec<f64>> = batches
            .iter()
            .map(|b| b.iter().map(|&v| v as f64).collect())
            .collect();
        let snap_at = ((snap_frac * batches.len() as f64) as usize).min(batches.len() - 1);

        // Crashing timeline: ops, then process death (drop, no shutdown).
        let crash_dir = TempDir::new("prop-crash").unwrap();
        {
            let service = QuantileService::open(ServiceConfig::new(crash_dir.path())).unwrap();
            run_ops(&service, "t", &tokens, &batches, snap_at);
        }

        // Uninterrupted twin: same ops, still alive when probed.
        let ref_dir = TempDir::new("prop-ref").unwrap();
        let reference = QuantileService::open(ServiceConfig::new(ref_dir.path())).unwrap();
        run_ops(&reference, "t", &tokens, &batches, snap_at);

        // Recover the crashed instance and compare every query surface.
        let recovered = QuantileService::open(ServiceConfig::new(crash_dir.path())).unwrap();
        let report = recovered.recovery_report().clone();
        prop_assert_eq!(report.snapshot_gen, Some(1), "snapshot must be found");
        prop_assert_eq!(
            report.records_replayed,
            (batches.len() - 1 - snap_at.min(batches.len() - 1)) as u64,
            "replay must cover exactly the post-snapshot batches"
        );

        prop_assert_eq!(probe(&recovered, "t"), probe(&reference, "t"));
        prop_assert_eq!(
            recovered.stats("t").unwrap(),
            reference.stats("t").unwrap()
        );

        // And recovery is idempotent: crash again immediately, reopen,
        // still identical.
        drop(recovered);
        let again = QuantileService::open(ServiceConfig::new(crash_dir.path())).unwrap();
        prop_assert_eq!(probe(&again, "t"), probe(&reference, "t"));
    }

    /// Ingest *after* recovery also stays identical: the checkpoint swap
    /// unified durable and live state, so both timelines continue from
    /// the same coins.
    #[test]
    fn post_recovery_ingest_stays_identical(
        hra in any::<bool>(),
        batches in vec(vec(0u64..100_000, 1..200), 2..6),
        tail in vec(vec(0u64..100_000, 1..200), 1..4),
    ) {
        let tokens: Vec<&str> = if hra {
            vec!["K=8", "HRA", "SHARDS=2"]
        } else {
            vec!["K=8", "LRA", "SHARDS=2"]
        };
        let to_f = |bs: &[Vec<u64>]| -> Vec<Vec<f64>> {
            bs.iter()
                .map(|b| b.iter().map(|&v| v as f64).collect())
                .collect()
        };
        let batches = to_f(&batches);
        let tail = to_f(&tail);
        let snap_at = batches.len() - 1; // snapshot after the last prefix batch

        let crash_dir = TempDir::new("prop-tail-crash").unwrap();
        {
            let service = QuantileService::open(ServiceConfig::new(crash_dir.path())).unwrap();
            run_ops(&service, "t", &tokens, &batches, snap_at);
        }
        let ref_dir = TempDir::new("prop-tail-ref").unwrap();
        let reference = QuantileService::open(ServiceConfig::new(ref_dir.path())).unwrap();
        run_ops(&reference, "t", &tokens, &batches, snap_at);

        let recovered = QuantileService::open(ServiceConfig::new(crash_dir.path())).unwrap();
        for batch in &tail {
            let values: Vec<OrdF64> = batch.iter().copied().map(OrdF64).collect();
            recovered.add_batch("t", &values).unwrap();
            reference.add_batch("t", &values).unwrap();
        }
        prop_assert_eq!(probe(&recovered, "t"), probe(&reference, "t"));
        prop_assert_eq!(
            recovered.stats("t").unwrap(),
            reference.stats("t").unwrap()
        );
    }
}
