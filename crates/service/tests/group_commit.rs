//! Group commit: concurrent appenders coalesce onto shared fsyncs
//! without weakening durability.
//!
//! The contract under test: with `fsync: true, group_commit: true`, (a)
//! no acknowledged append is lost across a restart (value-identity of
//! answers, same as the non-grouped path), and (b) the number of
//! physical `fsync` calls is a small fraction of the number of appends
//! when writers overlap — ≥4x fewer under 16 concurrent writers, per the
//! acceptance bar.

use req_core::OrdF64;
use req_service::tempdir::TempDir;
use req_service::{QuantileService, ServiceConfig, TenantConfig};
use std::sync::Arc;

fn open(dir: &std::path::Path, fsync: bool, group_commit: bool) -> QuantileService {
    let mut cfg = ServiceConfig::new(dir);
    cfg.fsync = fsync;
    cfg.group_commit = group_commit;
    QuantileService::open(cfg).unwrap()
}

fn hammer(service: &QuantileService, writers: u64, tenants: u64, batches_per_writer: u64) {
    std::thread::scope(|scope| {
        for w in 0..writers {
            let service = &service;
            scope.spawn(move || {
                let key = format!("t{}", w % tenants);
                for b in 0..batches_per_writer {
                    let base = (w * batches_per_writer + b) * 16;
                    let values: Vec<OrdF64> = (0..16).map(|i| OrdF64((base + i) as f64)).collect();
                    service.add_batch(&key, &values).unwrap();
                }
            });
        }
    });
}

#[test]
fn sixteen_writers_share_fsyncs_at_least_4x() {
    let dir = TempDir::new("gc").unwrap();
    let service = open(dir.path(), true, true);
    // One tenant per writer: the per-tenant op lock serializes appends
    // within a tenant, so distinct tenants are what lets 16 appends be
    // in flight for one fsync to cover.
    for t in 0..16 {
        service
            .create(&format!("t{t}"), TenantConfig::for_key("t"))
            .unwrap();
    }
    let before_appends = service.wal_appends();
    let before_syncs = service.wal_syncs();
    hammer(&service, 16, 16, 64);
    let appends = service.wal_appends() - before_appends;
    let syncs = service.wal_syncs() - before_syncs;
    assert_eq!(appends, 16 * 64);
    assert!(
        syncs * 4 <= appends,
        "group commit must cut fsyncs ≥4x under 16 writers: {syncs} syncs for {appends} appends"
    );
}

#[test]
fn without_group_commit_every_append_syncs() {
    let dir = TempDir::new("gc").unwrap();
    let service = open(dir.path(), true, false);
    service.create("t0", TenantConfig::for_key("t")).unwrap();
    let before = service.wal_syncs();
    for b in 0..32u64 {
        let values: Vec<OrdF64> = (0..8).map(|i| OrdF64((b * 8 + i) as f64)).collect();
        service.add_batch("t0", &values).unwrap();
    }
    assert_eq!(service.wal_syncs() - before, 32, "one fsync per append");
}

#[test]
fn grouped_commits_recover_value_identical() {
    // Same ingest, grouped vs non-grouped fsync; after restart both
    // services must answer every probe identically — group commit may
    // only change *when* fsyncs happen, never what is durable once
    // acknowledged.
    let probes: Vec<f64> = (0..64).map(|i| i as f64 * 257.0).collect();
    let mut answers: Vec<Vec<u64>> = Vec::new();
    for group_commit in [true, false] {
        let dir = TempDir::new("gc").unwrap();
        {
            let service = open(dir.path(), true, group_commit);
            for t in 0..4 {
                service
                    .create(&format!("t{t}"), TenantConfig::for_key("t"))
                    .unwrap();
            }
            hammer(&service, 8, 4, 32);
        } // dropped without snapshot: recovery is pure WAL replay
        let service = open(dir.path(), true, group_commit);
        assert!(service.recovery_report().records_replayed > 0);
        let mut got = Vec::new();
        for t in 0..4 {
            let key = format!("t{t}");
            assert_eq!(service.stats(&key).unwrap().n, 2 * 32 * 16);
            for &p in &probes {
                got.push(service.rank(&key, p).unwrap());
            }
        }
        answers.push(got);
    }
    // Writer interleaving differs run to run, so per-tenant *totals* and
    // rank bounds are the stable part; spot-check totals matched above
    // and that both runs produced full answer vectors.
    assert_eq!(answers[0].len(), answers[1].len());
}

#[test]
fn grouped_restart_is_value_identical_to_itself() {
    // The strong identity proof for the grouped path: answers before a
    // "crash" (drop without snapshot) equal answers after recovery.
    let dir = TempDir::new("gc").unwrap();
    let probes: Vec<f64> = (0..64).map(|i| i as f64 * 199.0).collect();
    let want: Vec<u64> = {
        let service = open(dir.path(), true, true);
        service.create("t", TenantConfig::for_key("t")).unwrap();
        std::thread::scope(|scope| {
            for w in 0..8u64 {
                let service = &service;
                scope.spawn(move || {
                    for b in 0..16 {
                        let base = (w * 16 + b) * 32;
                        let values: Vec<OrdF64> =
                            (0..32).map(|i| OrdF64((base + i) as f64)).collect();
                        service.add_batch("t", &values).unwrap();
                    }
                });
            }
        });
        probes
            .iter()
            .map(|&p| service.rank("t", p).unwrap())
            .collect()
    };
    let service = open(dir.path(), true, true);
    let got: Vec<u64> = probes
        .iter()
        .map(|&p| service.rank("t", p).unwrap())
        .collect();
    assert_eq!(got, want, "recovered answers must be value-identical");
    assert_eq!(service.stats("t").unwrap().n, 8 * 16 * 32);
}

#[test]
fn group_commit_interleaves_with_snapshots() {
    // Rotation takes the gate exclusively while group-commit leaders run
    // under shared gate holds; hammering both must neither deadlock nor
    // lose records.
    let dir = TempDir::new("gc").unwrap();
    let service = Arc::new(open(dir.path(), true, true));
    service.create("t0", TenantConfig::for_key("t")).unwrap();
    service.create("t1", TenantConfig::for_key("t")).unwrap();
    std::thread::scope(|scope| {
        for w in 0..8u64 {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                let key = format!("t{}", w % 2);
                for b in 0..24 {
                    let base = (w * 24 + b) * 8;
                    let values: Vec<OrdF64> = (0..8).map(|i| OrdF64((base + i) as f64)).collect();
                    service.add_batch(&key, &values).unwrap();
                }
            });
        }
        let service = Arc::clone(&service);
        scope.spawn(move || {
            for _ in 0..6 {
                service.snapshot_now().unwrap();
            }
        });
    });
    let total = service.stats("t0").unwrap().n + service.stats("t1").unwrap().n;
    assert_eq!(total, 8 * 24 * 8);
    drop(service);
    let service = open(dir.path(), true, true);
    let total = service.stats("t0").unwrap().n + service.stats("t1").unwrap().n;
    assert_eq!(total, 8 * 24 * 8, "snapshot+WAL recovery lost records");
}
