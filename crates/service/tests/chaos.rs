//! Chaos-plane and idempotency properties.
//!
//! Four claims, proptested or driven with injected faults:
//!
//! 1. **Backoff bounds** — [`RetryPolicy::backoff`] is deterministic per
//!    `(seed, attempt)` and always lands in `[cap/2, cap)` where
//!    `cap = min(base·2^attempt, max_backoff)` — jitter never exceeds the
//!    cap, never collapses below half of it.
//! 2. **Dedup window** — tokened retries behave exactly like an explicit
//!    model: fresh seqs apply once, in-window retries return the recorded
//!    outcome without re-ingesting, seqs older than the window are
//!    rejected as stale. The window survives crash + recovery, whether it
//!    was persisted by a snapshot's dedup frame or rebuilt from WAL
//!    replay.
//! 3. **Exactly-once under ambiguity** — a record that reached the WAL
//!    but whose fsync failed surfaces an error *and* applies; the
//!    client's retry of the same token dedups instead of double-counting.
//! 4. **Fault-plane recovery** — torn WAL appends roll back cleanly
//!    (retry-until-acked converges on a value-identical sketch), and a
//!    poisoned WAL degrades to read-only serving until a snapshot
//!    rotation heals it.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

use req_core::{OrdF64, ReqError};
use req_service::tempdir::TempDir;
use req_service::wal::{read_wal, WalWriter};
use req_service::{
    FaultKind, FaultPlane, FaultSite, IdemToken, QuantileService, RetryPolicy, ServiceConfig,
    TenantConfig, WalRecord,
};
use std::sync::Arc;

fn tok(client_id: u64, seq: u64) -> Option<IdemToken> {
    Some(IdemToken { client_id, seq })
}

fn cfg(dir: &TempDir) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(dir.path());
    cfg.dedup_window = 8;
    cfg
}

fn create_t(service: &QuantileService) {
    service
        .create("t", TenantConfig::parse("t", &["K=8", "SHARDS=2"]).unwrap())
        .unwrap();
}

fn n_of(service: &QuantileService) -> u64 {
    service.stats("t").unwrap().n
}

// ---------------------------------------------------------------- backoff

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `backoff(attempt)` is deterministic and stays in `[cap/2, cap)`.
    #[test]
    fn backoff_is_deterministic_and_within_cap_bounds(
        seed in any::<u64>(),
        attempt in 0u32..40,
        base_us in 1u64..100_000,
        max_us in 1u64..5_000_000,
    ) {
        let policy = RetryPolicy {
            base_backoff: Duration::from_micros(base_us),
            max_backoff: Duration::from_micros(max_us),
            seed,
            ..RetryPolicy::default()
        };
        let cap = (base_us * 1_000)
            .saturating_mul(1u64 << attempt.min(32))
            .min(max_us * 1_000)
            .max(1);
        let got = policy.backoff(attempt).as_nanos() as u64;
        prop_assert!(got >= cap / 2, "backoff {got}ns below half the cap {cap}ns");
        prop_assert!(got < cap, "backoff {got}ns reached the cap {cap}ns");
        prop_assert_eq!(policy.backoff(attempt), policy.backoff(attempt));
    }
}

// ------------------------------------------------------------------ dedup

/// What the dedup window should say about one incoming seq.
#[derive(Debug, PartialEq)]
enum Expect {
    Fresh,
    Duplicate(u64),
    Stale,
}

/// Reference model of one client's window: mirrors the service's
/// `ClientWindow` semantics from the outside.
struct Model {
    hi: u64,
    applied: BTreeMap<u64, u64>,
    window: u64,
}

impl Model {
    fn classify(&self, seq: u64) -> Expect {
        if let Some(&n) = self.applied.get(&seq) {
            Expect::Duplicate(n)
        } else if self.hi >= self.window && seq <= self.hi - self.window {
            Expect::Stale
        } else {
            Expect::Fresh
        }
    }

    fn record(&mut self, seq: u64, n: u64) {
        self.applied.insert(seq, n);
        self.hi = self.hi.max(seq);
        let floor = self.hi.saturating_sub(self.window);
        self.applied
            .retain(|&s, _| s > floor || self.hi < self.window);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The service's dedup window agrees with the explicit model on every
    /// op of an arbitrary (fresh / replayed / ancient) seq schedule, and
    /// the tenant's item count equals the model's fresh ingests only.
    #[test]
    fn dedup_window_agrees_with_the_reference_model(
        window in 2u64..10,
        seqs in vec(1u64..40, 1..48),
    ) {
        let dir = TempDir::new("chaos-dedup").unwrap();
        let mut svc_cfg = ServiceConfig::new(dir.path());
        svc_cfg.dedup_window = window;
        let service = QuantileService::open(svc_cfg).unwrap();
        create_t(&service);

        let mut model = Model { hi: 0, applied: BTreeMap::new(), window };
        let mut expected_n = 0u64;
        for &seq in &seqs {
            // Batch size varies with the seq so a wrongly re-applied
            // duplicate would shift the count detectably.
            let len = (seq % 3) + 1;
            let batch: Vec<OrdF64> = (0..len).map(|i| OrdF64((seq * 10 + i) as f64)).collect();
            let got = service.add_batch_with_token("t", &batch, tok(7, seq));
            match model.classify(seq) {
                Expect::Fresh => {
                    prop_assert_eq!(got.unwrap(), len);
                    model.record(seq, len);
                    expected_n += len;
                }
                Expect::Duplicate(n) => {
                    prop_assert_eq!(got.unwrap(), n, "retry of seq {} must echo the original count", seq);
                }
                Expect::Stale => {
                    let err = got.unwrap_err();
                    prop_assert!(
                        matches!(err, ReqError::InvalidParameter(_)),
                        "seq {} below the window must be rejected, got {:?}", seq, err
                    );
                }
            }
            prop_assert_eq!(n_of(&service), expected_n);
        }
    }

    /// Crash + recovery preserves the dedup window: retries of recent
    /// tokens still dedup, ancient ones still reject — regardless of
    /// whether a snapshot (dedup frame) or WAL replay carried the state.
    #[test]
    fn recovery_preserves_the_dedup_window(
        count in 9u64..24,
        snap_at in 0u64..24, // 0 = crash without any snapshot

    ) {
        let dir = TempDir::new("chaos-recover").unwrap();
        {
            let service = QuantileService::open(cfg(&dir)).unwrap();
            create_t(&service);
            for seq in 1..=count {
                let batch = [OrdF64(seq as f64)];
                service.add_batch_with_token("t", &batch, tok(9, seq)).unwrap();
                if snap_at == seq {
                    service.snapshot_now().unwrap();
                }
            }
            // Crash: drop with no shutdown hook.
        }
        let service = QuantileService::open(cfg(&dir)).unwrap();
        prop_assert_eq!(n_of(&service), count);

        // Recent retries echo their outcome without re-ingesting.
        for seq in (count - 3)..=count {
            let batch = [OrdF64(seq as f64)];
            prop_assert_eq!(
                service.add_batch_with_token("t", &batch, tok(9, seq)).unwrap(),
                1
            );
        }
        prop_assert_eq!(n_of(&service), count);

        // A seq at/below hi − window is unknowable → stale error.
        let stale = service.add_batch_with_token("t", &[OrdF64(1.0)], tok(9, 1));
        prop_assert!(matches!(stale, Err(ReqError::InvalidParameter(_))));

        // Fresh seqs continue where the client left off.
        prop_assert_eq!(
            service
                .add_batch_with_token("t", &[OrdF64(0.5)], tok(9, count + 1))
                .unwrap(),
            1
        );
        prop_assert_eq!(n_of(&service), count + 1);
    }
}

/// A token replayed against the wrong operation kind is rejected rather
/// than answered with a nonsensical outcome.
#[test]
fn token_reuse_across_operation_kinds_is_rejected() {
    let dir = TempDir::new("chaos-kinds").unwrap();
    let service = QuantileService::open(cfg(&dir)).unwrap();
    service
        .create_with_token(
            "t",
            TenantConfig::parse("t", &["K=8", "SHARDS=2"]).unwrap(),
            tok(3, 1),
        )
        .unwrap();
    // Same (client, seq) re-issued as an ADDB: duplicate, but of a CREATE.
    let err = service
        .add_batch_with_token("t", &[OrdF64(1.0)], tok(3, 1))
        .unwrap_err();
    assert!(matches!(err, ReqError::InvalidParameter(_)), "{err:?}");
    // And the honest retry of the CREATE echoes `Created`.
    service
        .create_with_token(
            "t",
            TenantConfig::parse("t", &["K=8", "SHARDS=2"]).unwrap(),
            tok(3, 1),
        )
        .unwrap();
}

// ------------------------------------------------------- wal v4 roundtrip

/// Tokened and tokenless records coexist in one WAL and replay intact —
/// the v4 format is a pure superset of v3.
#[test]
fn mixed_token_wal_replays_every_record_intact() {
    let dir = TempDir::new("chaos-walv4").unwrap();
    let path = dir.path().join("wal-1.log");
    let config = TenantConfig::parse("t", &["K=8", "SHARDS=2"]).unwrap();
    let records = vec![
        WalRecord::Create {
            key: "t".into(),
            config: config.clone(),
            token: IdemToken {
                client_id: u64::MAX,
                seq: 1,
            }
            .into(),
        },
        WalRecord::AddBatch {
            key: "t".into(),
            values: vec![OrdF64(1.0), OrdF64(2.0)],
            token: None,
        },
        WalRecord::AddBatch {
            key: "t".into(),
            values: vec![OrdF64(3.0)],
            token: tok(17, 2),
        },
        WalRecord::Drop {
            key: "t".into(),
            token: None,
        },
        WalRecord::Create {
            key: "t".into(),
            config,
            token: None,
        },
        WalRecord::Drop {
            key: "t".into(),
            token: tok(17, 3),
        },
    ];
    let mut w = WalWriter::create(&path).unwrap();
    for rec in &records {
        w.append(&rec.encode()).unwrap();
    }
    drop(w);
    let replay = read_wal(&path).unwrap();
    assert_eq!(replay.records, records);
    assert_eq!(replay.damaged_bytes, 0);
}

// ---------------------------------------------------------- exactly-once

/// A failed fsync *after* a complete append is ambiguous to the caller
/// but not to the service: the record is in the WAL, so it applies, and
/// the token retry returns the recorded outcome instead of re-ingesting.
#[test]
fn failed_fsync_after_append_applies_exactly_once() {
    let dir = TempDir::new("chaos-unsynced").unwrap();
    let plane = Arc::new(FaultPlane::new(11).with(FaultSite::WalSync, FaultKind::Error, 1, 1));
    plane.set_armed(false);
    let mut svc_cfg = cfg(&dir);
    svc_cfg.fsync = true;
    svc_cfg.group_commit = false;
    svc_cfg.faults = Some(plane.clone());
    let service = QuantileService::open(svc_cfg).unwrap();
    create_t(&service);

    plane.set_armed(true);
    let batch = [OrdF64(1.0), OrdF64(2.0), OrdF64(3.0)];
    let err = service
        .add_batch_with_token("t", &batch, tok(5, 1))
        .unwrap_err();
    assert!(matches!(err, ReqError::Io(_)), "{err:?}");
    assert_eq!(n_of(&service), 3, "appended record must apply");

    // The ambiguous client retries — and must not double-ingest.
    plane.set_armed(false);
    assert_eq!(
        service
            .add_batch_with_token("t", &batch, tok(5, 1))
            .unwrap(),
        3
    );
    assert_eq!(n_of(&service), 3);

    // The record reached the file, so a crashed replay also counts it once.
    drop(service);
    let mut reopen_cfg = cfg(&dir);
    reopen_cfg.fsync = true;
    reopen_cfg.group_commit = false;
    let service = QuantileService::open(reopen_cfg).unwrap();
    assert_eq!(n_of(&service), 3);
    assert_eq!(
        service
            .add_batch_with_token("t", &batch, tok(5, 1))
            .unwrap(),
        3,
        "dedup window must survive the crash too"
    );
    assert_eq!(n_of(&service), 3);
}

// ------------------------------------------------------- faulted ingest

/// Retry-until-acked under torn WAL appends converges on a sketch
/// value-identical to an unfaulted twin — across several fault seeds.
#[test]
fn torn_appends_with_retries_converge_value_identically() {
    for seed in [1u64, 2, 3] {
        let faulty_dir = TempDir::new("chaos-torn-f").unwrap();
        let plane =
            Arc::new(FaultPlane::new(seed).with(FaultSite::WalWrite, FaultKind::Torn, 1, 3));
        let mut svc_cfg = cfg(&faulty_dir);
        svc_cfg.faults = Some(plane.clone());
        let faulty = QuantileService::open(svc_cfg).unwrap();

        let clean_dir = TempDir::new("chaos-torn-c").unwrap();
        let clean = QuantileService::open(cfg(&clean_dir)).unwrap();

        plane.set_armed(false);
        create_t(&faulty);
        plane.set_armed(true);
        create_t(&clean);

        let mut retries = 0u64;
        for i in 0..40u64 {
            let batch: Vec<OrdF64> = (0..1 + i % 5)
                .map(|j| OrdF64((i * 100 + j) as f64))
                .collect();
            let token = tok(1, i + 1);
            let mut attempts = 0;
            loop {
                match faulty.add_batch_with_token("t", &batch, token) {
                    Ok(n) => {
                        assert_eq!(n, batch.len() as u64);
                        break;
                    }
                    Err(ReqError::Io(_)) => {
                        retries += 1;
                        attempts += 1;
                        assert!(attempts < 100, "fault schedule never let seq {i} through");
                    }
                    Err(e) => panic!("unexpected error under torn appends: {e:?}"),
                }
            }
            clean.add_batch("t", &batch).unwrap();
        }
        assert!(
            retries > 0,
            "seed {seed} injected no faults — test is vacuous"
        );
        assert!(plane.injected() > 0);

        // Crash the faulted service; recovery must see only whole frames.
        drop(faulty);
        let recovered = QuantileService::open(cfg(&faulty_dir)).unwrap();
        assert_eq!(n_of(&recovered), n_of(&clean), "seed {seed}");
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(
                recovered.quantile("t", q).unwrap(),
                clean.quantile("t", q).unwrap(),
                "seed {seed}, q={q}"
            );
        }
    }
}

// ----------------------------------------------------------- degradation

/// A poisoned WAL writer (torn append whose rollback also fails) flips
/// the service to read-only: queries answer, mutations refuse, and the
/// next successful snapshot rotation heals it.
#[test]
fn poisoned_wal_degrades_to_read_only_until_snapshot_heals() {
    let dir = TempDir::new("chaos-ro").unwrap();
    let plane = Arc::new(
        FaultPlane::new(4)
            .with(FaultSite::WalWrite, FaultKind::Torn, 1, 1)
            .with(FaultSite::WalRollback, FaultKind::Error, 1, 1),
    );
    plane.set_armed(false);
    let mut svc_cfg = cfg(&dir);
    svc_cfg.faults = Some(plane.clone());
    let service = QuantileService::open(svc_cfg).unwrap();
    create_t(&service);
    service.add_batch("t", &[OrdF64(1.0), OrdF64(2.0)]).unwrap();

    plane.set_armed(true);
    let err = service.add_batch("t", &[OrdF64(3.0)]).unwrap_err();
    assert!(matches!(err, ReqError::Io(_)), "{err:?}");
    assert!(
        service.read_only(),
        "failed rollback must poison the writer"
    );
    assert_eq!(service.wal_poisoned(), 1);
    assert!(service.stats("t").unwrap().read_only);

    // Degraded mode: mutations refuse fast, queries still answer.
    plane.set_armed(false);
    let err = service.add_batch("t", &[OrdF64(4.0)]).unwrap_err();
    assert!(matches!(err, ReqError::Unavailable(_)), "{err:?}");
    let err = service.drop_key_with_token("t", tok(2, 1)).unwrap_err();
    assert!(matches!(err, ReqError::Unavailable(_)), "{err:?}");
    assert_eq!(service.rank("t", 10.0).unwrap(), 2);
    assert_eq!(n_of(&service), 2);

    // Healing: a snapshot rotation installs a fresh WAL writer.
    service.snapshot_now().unwrap();
    assert!(!service.read_only());
    service.add_batch("t", &[OrdF64(5.0)]).unwrap();
    assert_eq!(n_of(&service), 3);
    assert!(!service.stats("t").unwrap().read_only);

    // And the healed state is durable.
    drop(service);
    let recovered = QuantileService::open(cfg(&dir)).unwrap();
    assert_eq!(n_of(&recovered), 3);
}

/// Over the in-flight mutation limit, requests shed with `Busy` (no side
/// effect) instead of queueing — and every accepted batch still lands.
#[test]
fn over_limit_mutations_shed_with_busy() {
    let dir = TempDir::new("chaos-shed").unwrap();
    // Delay every WAL append ~1ms so in-flight windows overlap reliably.
    let plane = Arc::new(FaultPlane::new(6).with(FaultSite::WalWrite, FaultKind::Delay(1), 1, 1));
    let mut svc_cfg = cfg(&dir);
    svc_cfg.max_inflight_mutations = 1;
    svc_cfg.faults = Some(plane.clone());
    plane.set_armed(false);
    let service = Arc::new(QuantileService::open(svc_cfg).unwrap());
    create_t(&service);
    plane.set_armed(true);

    let threads = 8;
    let per_thread = 60u64;
    let barrier = Arc::new(std::sync::Barrier::new(threads));
    let accepted: u64 = std::thread::scope(|scope| {
        (0..threads)
            .map(|_| {
                let service = Arc::clone(&service);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let mut ok = 0u64;
                    for i in 0..per_thread {
                        match service.add_batch("t", &[OrdF64(i as f64)]) {
                            Ok(1) => ok += 1,
                            Ok(n) => panic!("batch of 1 acked {n}"),
                            Err(ReqError::Busy(_)) => {}
                            Err(e) => panic!("only Busy may fail here: {e:?}"),
                        }
                    }
                    ok
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });

    let shed = service.shed_requests();
    assert_eq!(accepted + shed, threads as u64 * per_thread);
    assert!(shed > 0, "8 threads against limit 1 must shed");
    assert_eq!(
        n_of(&service),
        accepted,
        "a shed request must have no side effect"
    );
    assert_eq!(service.stats("t").unwrap().shed, shed);
}
