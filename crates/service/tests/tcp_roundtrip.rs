//! End-to-end TCP integration: a live server on an ephemeral port, typed
//! clients round-tripping every protocol command, durability across a
//! server restart, and concurrent clients hammering one tenant.

use req_service::tempdir::TempDir;
use req_service::{serve, ClientApi, CreateOptions, QuantileService, ReqClient, ServiceConfig};
use std::sync::Arc;

fn start(
    dir: &std::path::Path,
    threads: usize,
) -> (Arc<QuantileService>, req_service::ServerHandle) {
    let service = Arc::new(QuantileService::open(ServiceConfig::new(dir)).unwrap());
    let handle = serve(Arc::clone(&service), "127.0.0.1:0", threads).unwrap();
    (service, handle)
}

#[test]
fn full_command_surface_roundtrips() {
    let dir = TempDir::new("tcp").unwrap();
    let (_service, handle) = start(dir.path(), 2);
    let mut c = ReqClient::connect(handle.addr()).unwrap();

    c.ping().unwrap();
    c.create(
        "lat",
        &CreateOptions {
            k: Some(16),
            hra: Some(true),
            shards: Some(2),
            ..CreateOptions::default()
        },
    )
    .unwrap();

    // Ingest: one big batch plus singles.
    let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
    for chunk in values.chunks(1_000) {
        assert_eq!(c.add_batch("lat", chunk).unwrap(), chunk.len() as u64);
    }
    c.add("lat", 10_000.0).unwrap();

    // Queries.
    let r = c.rank("lat", 5_000.0).unwrap();
    assert!((r as f64 - 5_001.0).abs() / 5_001.0 < 0.2, "rank {r}");
    let q = c.quantile("lat", 0.5).unwrap().unwrap();
    assert!((q - 5_000.0).abs() < 1_500.0, "median {q}");
    let cdf = c.cdf("lat", &[1_000.0, 5_000.0, 9_000.0]).unwrap();
    assert_eq!(cdf.len(), 3);
    assert!(cdf[0] < cdf[1] && cdf[1] < cdf[2] && cdf[2] <= 1.0);
    let stats = c.stats("lat").unwrap();
    assert_eq!(stats.n, 10_001);
    assert_eq!(stats.shards, 2);
    assert!(stats.hra);
    assert!(stats.retained > 0);
    assert_eq!(c.list().unwrap(), vec!["lat".to_string()]);

    // Snapshot over the wire, then drop.
    assert_eq!(c.snapshot().unwrap(), 1);
    c.drop_key("lat").unwrap();
    assert!(c.rank("lat", 1.0).is_err());
    assert!(c.list().unwrap().is_empty());
    c.quit().unwrap();
    handle.shutdown();
}

#[test]
#[allow(deprecated)] // raw pass-through still exercises the shim
fn errors_cross_the_wire_with_their_kind() {
    let dir = TempDir::new("tcp").unwrap();
    let (_service, handle) = start(dir.path(), 1);
    let mut c = ReqClient::connect(handle.addr()).unwrap();

    // Unknown key -> InvalidParameter, with the message intact.
    let err = c.rank("ghost", 1.0).unwrap_err();
    match err {
        req_core::ReqError::InvalidParameter(msg) => assert!(msg.contains("ghost"), "{msg}"),
        other => panic!("wrong kind: {other:?}"),
    }
    // Duplicate create -> InvalidParameter.
    c.create("t", &CreateOptions::default()).unwrap();
    assert!(matches!(
        c.create("t", &CreateOptions::default()),
        Err(req_core::ReqError::InvalidParameter(_))
    ));
    // Malformed command via raw pass-through.
    assert!(c.roundtrip("WHAT even").is_err());
    assert!(c.roundtrip("ADDB t").is_err());
    // The connection stays usable after errors.
    c.ping().unwrap();
}

#[test]
fn state_survives_a_server_restart() {
    let dir = TempDir::new("tcp").unwrap();
    let probes: Vec<f64> = (0..50).map(|i| i as f64 * 199.0).collect();
    let want: Vec<u64> = {
        let (_service, handle) = start(dir.path(), 2);
        let mut c = ReqClient::connect(handle.addr()).unwrap();
        c.create(
            "t",
            &CreateOptions {
                k: Some(32),
                ..CreateOptions::default()
            },
        )
        .unwrap();
        let values: Vec<f64> = (0..8_000).map(|i| (i * 37 % 10_007) as f64).collect();
        for chunk in values.chunks(500) {
            c.add_batch("t", chunk).unwrap();
        }
        probes.iter().map(|&p| c.rank("t", p).unwrap()).collect()
        // handle dropped: server stops; service dropped: "process exit"
    };
    let (service, handle) = start(dir.path(), 2);
    assert!(service.recovery_report().records_replayed > 0);
    let mut c = ReqClient::connect(handle.addr()).unwrap();
    let got: Vec<u64> = probes.iter().map(|&p| c.rank("t", p).unwrap()).collect();
    assert_eq!(got, want, "recovered server must answer identically");
    assert_eq!(c.stats("t").unwrap().n, 8_000);
}

#[test]
fn concurrent_clients_share_one_tenant() {
    let dir = TempDir::new("tcp").unwrap();
    let (service, handle) = start(dir.path(), 4);
    let addr = handle.addr();
    let mut c = ReqClient::connect(addr).unwrap();
    c.create("shared", &CreateOptions::default()).unwrap();

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            scope.spawn(move || {
                let mut c = ReqClient::connect(addr).unwrap();
                let values: Vec<f64> = (0..5_000).map(|i| (t * 5_000 + i) as f64).collect();
                for chunk in values.chunks(250) {
                    c.add_batch("shared", chunk).unwrap();
                }
            });
        }
    });
    assert_eq!(c.stats("shared").unwrap().n, 20_000);
    let r = c.rank("shared", 10_000.0).unwrap();
    assert!((r as f64 - 10_001.0).abs() / 10_001.0 < 0.2, "rank {r}");
    handle.shutdown();
    drop(service);

    // Everything the concurrent clients wrote is durable.
    let (service, _handle2) = start(dir.path(), 1);
    assert_eq!(service.stats("shared").unwrap().n, 20_000);
}

#[test]
fn oversized_lines_are_rejected_not_fatal() {
    use std::io::{BufRead, BufReader, Write};

    let dir = TempDir::new("tcp").unwrap();
    let (_service, handle) = start(dir.path(), 2);
    let mut c = ReqClient::connect(handle.addr()).unwrap();
    // A legitimate large-but-bounded batch works.
    c.create("t", &CreateOptions::default()).unwrap();
    let big: Vec<f64> = (0..100_000).map(|i| i as f64).collect();
    assert_eq!(c.add_batch("t", &big).unwrap(), 100_000);
    assert_eq!(c.stats("t").unwrap().n, 100_000);

    // A line beyond MAX_LINE_BYTES must be rejected and the connection
    // closed — without wedging the worker or the server. The server
    // closes with our unread tail still in flight, so the kernel may RST
    // the socket before the ERR line is deliverable: both a clean ERR
    // and a reset are acceptable outcomes for the misbehaving client;
    // the hard invariant is that the server survives.
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
    let monster = vec![b'x'; req_service::server::MAX_LINE_BYTES as usize + 64];
    let _ = raw.write_all(&monster);
    let mut reply = String::new();
    match BufReader::new(raw).read_line(&mut reply) {
        Ok(0) | Err(_) => {} // closed/reset before the reply was readable
        Ok(_) => assert!(
            reply.starts_with("ERR invalid") && reply.contains("exceeds"),
            "got `{reply}`"
        ),
    }

    // The server keeps serving other clients.
    c.ping().unwrap();
}
