//! The wire API: typed [`Request`] / [`Response`] enums plus two codecs.
//!
//! The protocol is the *enums*, not any one byte layout. A request names a
//! command and its arguments; a response carries that command's typed
//! result (or a typed error). Two interchangeable codecs encode them:
//!
//! * [`text`] — one line per message, debuggable with `nc`. Rust's `f64`
//!   Display/FromStr round-trip exactly (shortest-repr printing), so no
//!   precision is lost crossing the wire. This is the PR 5 line protocol,
//!   re-expressed as a codec over the typed API.
//! * [`binary`] — length-prefixed [`req_core::frame`] frames (CRC32 over
//!   the payload) around a tagged binary payload. Self-describing,
//!   bit-exact for every `f64` (NaN payloads included), and cheap enough
//!   to parse that the evented server pipelines thousands of frames per
//!   connection without the string tax.
//!
//! Both codecs round-trip every request and response (proptested in
//! `tests/protocol_compat.rs`), and a command handled through either codec
//! produces the same typed [`Response`] — the text protocol is one
//! *encoding* of the API, no longer the API itself.
//!
//! Errors cross the wire with their kind: [`Response::Err`] carries an
//! [`ErrorKind`] that maps 1:1 onto [`ReqError`] variants, so clients
//! match on the variant instead of sniffing string prefixes.

pub mod binary;
pub mod text;

use req_core::ReqError;

use crate::config::TenantConfig;
use crate::service::TenantStats;

/// An idempotency token: a client identity plus a per-client sequence
/// number. Mutating requests ([`Request::Create`], [`Request::AddBatch`],
/// [`Request::Drop`]) may carry one; the server records applied `(client,
/// seq)` pairs in a dedup window persisted through the WAL, so a retry
/// after an ambiguous failure (timeout, dropped connection, crash between
/// append and reply) is applied **exactly once**.
///
/// Text form is `TOKEN=client_id:seq`; the binary codec appends both
/// `u64`s behind a presence byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IdemToken {
    /// Stable identity of the issuing client (random or configured).
    pub client_id: u64,
    /// Monotonically increasing per-client mutation counter.
    pub seq: u64,
}

impl std::fmt::Display for IdemToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.client_id, self.seq)
    }
}

impl std::str::FromStr for IdemToken {
    type Err = ReqError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (cid, seq) = s
            .split_once(':')
            .ok_or_else(|| ReqError::InvalidParameter(format!("bad token `{s}`")))?;
        let parse = |t: &str| {
            t.parse::<u64>()
                .map_err(|_| ReqError::InvalidParameter(format!("bad token `{s}`")))
        };
        Ok(IdemToken {
            client_id: parse(cid)?,
            seq: parse(seq)?,
        })
    }
}

/// One typed request — the unit both codecs encode.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `CREATE key [options…] [TOKEN=cid:seq]`
    Create {
        /// Tenant key.
        key: String,
        /// Resolved tenant configuration.
        config: TenantConfig,
        /// Optional idempotency token.
        token: Option<IdemToken>,
    },
    /// `ADD key value`
    Add {
        /// Tenant key.
        key: String,
        /// Value to ingest.
        value: f64,
    },
    /// `ADDB key v1 v2 … [TOKEN=cid:seq]`
    AddBatch {
        /// Tenant key.
        key: String,
        /// Values to ingest, in order.
        values: Vec<f64>,
        /// Optional idempotency token.
        token: Option<IdemToken>,
    },
    /// `RANK key value`
    Rank {
        /// Tenant key.
        key: String,
        /// Query point.
        value: f64,
    },
    /// `QUANTILE key q`
    Quantile {
        /// Tenant key.
        key: String,
        /// Normalized rank in `[0, 1]`.
        q: f64,
    },
    /// `CDF key p1 p2 …`
    Cdf {
        /// Tenant key.
        key: String,
        /// Ascending split points.
        points: Vec<f64>,
    },
    /// `STATS key`
    Stats {
        /// Tenant key.
        key: String,
    },
    /// `LIST`
    List,
    /// `SNAPSHOT`
    Snapshot,
    /// `DROP key [TOKEN=cid:seq]`
    Drop {
        /// Tenant key.
        key: String,
        /// Optional idempotency token.
        token: Option<IdemToken>,
    },
    /// `PING`
    Ping,
    /// `QUIT`
    Quit,
    /// `TAIL gen offset max_bytes` — replication: ship a slice of the
    /// server's WAL generation `gen` starting at byte `offset`, as whole
    /// CRC-valid frames (never a torn tail). Declared after `Quit` so the
    /// binary tags of the original twelve commands stay stable.
    Tail {
        /// WAL generation to read.
        gen: u64,
        /// Byte offset within that generation's file (0 = from the start).
        offset: u64,
        /// Most frame bytes to ship in one reply.
        max_bytes: u32,
    },
    /// `MERGE key` — scatter/gather: the tenant's serialized per-shard
    /// sketches (binary v3 `to_bytes`), for merging at a router via
    /// [`req_core::merge_wire_parts`].
    Merge {
        /// Tenant key.
        key: String,
    },
    /// `METRICS` — render the process-wide telemetry registry as
    /// Prometheus-style text exposition. Declared after `Merge` so the
    /// binary tags of the first fourteen commands stay stable.
    Metrics,
    /// `EVENTS max` — the newest `max` lines of the structured lifecycle
    /// event journal, oldest first.
    Events {
        /// Most event lines to return.
        max: u32,
    },
}

/// One shipped slice of a primary's WAL — the [`Request::Tail`] reply.
///
/// `frames` holds zero or more *whole* WAL frames exactly as they sit in
/// the primary's file; a follower appends them verbatim to its own WAL
/// and applies each record, mirroring the primary byte-for-byte. A
/// partially written or rolled-back tail frame is never shipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailSegment {
    /// The generation the frames come from.
    pub gen: u64,
    /// Byte offset the slice starts at (resolved: 0 in the request maps
    /// to the first frame after the file magic).
    pub offset: u64,
    /// Is `gen` final? `true` once the primary rotated past it — after
    /// draining the remaining frames, the follower performs its own
    /// rotation at the same record index and resumes from `gen + 1`.
    pub sealed: bool,
    /// The primary's live generation when the reply was built.
    pub latest_gen: u64,
    /// Whole WAL frames, concatenated.
    pub frames: Vec<u8>,
}

/// The command a [`Request`] names, without its arguments. Text responses
/// are not self-describing (`OK 42` answers both `RANK` and `ADDB`), so
/// [`text::decode_response`] needs the kind of the request it answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// `CREATE`
    Create,
    /// `ADD`
    Add,
    /// `ADDB`
    AddBatch,
    /// `RANK`
    Rank,
    /// `QUANTILE`
    Quantile,
    /// `CDF`
    Cdf,
    /// `STATS`
    Stats,
    /// `LIST`
    List,
    /// `SNAPSHOT`
    Snapshot,
    /// `DROP`
    Drop,
    /// `PING`
    Ping,
    /// `QUIT`
    Quit,
    /// `TAIL`
    Tail,
    /// `MERGE`
    Merge,
    /// `METRICS`
    Metrics,
    /// `EVENTS`
    Events,
}

impl Request {
    /// The command this request names.
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::Create { .. } => RequestKind::Create,
            Request::Add { .. } => RequestKind::Add,
            Request::AddBatch { .. } => RequestKind::AddBatch,
            Request::Rank { .. } => RequestKind::Rank,
            Request::Quantile { .. } => RequestKind::Quantile,
            Request::Cdf { .. } => RequestKind::Cdf,
            Request::Stats { .. } => RequestKind::Stats,
            Request::List => RequestKind::List,
            Request::Snapshot => RequestKind::Snapshot,
            Request::Drop { .. } => RequestKind::Drop,
            Request::Ping => RequestKind::Ping,
            Request::Quit => RequestKind::Quit,
            Request::Tail { .. } => RequestKind::Tail,
            Request::Merge { .. } => RequestKind::Merge,
            Request::Metrics => RequestKind::Metrics,
            Request::Events { .. } => RequestKind::Events,
        }
    }

    /// Parse one text request line.
    #[deprecated(since = "0.1.0", note = "use `protocol::text::decode_request`")]
    pub fn parse(line: &str) -> Result<Request, ReqError> {
        text::decode_request(line)
    }
}

/// The [`ReqError`] variant an error response carries — round-tripped
/// through both codecs so a remote failure is indistinguishable (by type)
/// from a local one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// [`ReqError::InvalidParameter`]
    Invalid,
    /// [`ReqError::IncompatibleMerge`]
    Incompatible,
    /// [`ReqError::CorruptBytes`]
    Corrupt,
    /// [`ReqError::Io`]
    Io,
    /// [`ReqError::Unavailable`] — degraded (read-only) mode.
    Unavailable,
    /// [`ReqError::Busy`] — request shed under load; retry after backoff.
    Busy,
}

impl ErrorKind {
    /// The stable wire token (`invalid`, `incompatible`, `corrupt`, `io`,
    /// `unavailable`, `busy`).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Invalid => "invalid",
            ErrorKind::Incompatible => "incompatible",
            ErrorKind::Corrupt => "corrupt",
            ErrorKind::Io => "io",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Busy => "busy",
        }
    }

    /// Parse a wire token back; `None` for unknown tokens.
    pub fn from_token(token: &str) -> Option<ErrorKind> {
        Some(match token {
            "invalid" => ErrorKind::Invalid,
            "incompatible" => ErrorKind::Incompatible,
            "corrupt" => ErrorKind::Corrupt,
            "io" => ErrorKind::Io,
            "unavailable" => ErrorKind::Unavailable,
            "busy" => ErrorKind::Busy,
            _ => return None,
        })
    }

    /// Rebuild the matching [`ReqError`] around `msg`.
    pub fn into_error(self, msg: String) -> ReqError {
        match self {
            ErrorKind::Invalid => ReqError::InvalidParameter(msg),
            ErrorKind::Incompatible => ReqError::IncompatibleMerge(msg),
            ErrorKind::Corrupt => ReqError::CorruptBytes(msg),
            ErrorKind::Io => ReqError::Io(msg),
            ErrorKind::Unavailable => ReqError::Unavailable(msg),
            ErrorKind::Busy => ReqError::Busy(msg),
        }
    }
}

impl From<&ReqError> for ErrorKind {
    fn from(e: &ReqError) -> Self {
        match e {
            ReqError::InvalidParameter(_) => ErrorKind::Invalid,
            ReqError::IncompatibleMerge(_) => ErrorKind::Incompatible,
            ReqError::CorruptBytes(_) => ErrorKind::Corrupt,
            ReqError::Io(_) => ErrorKind::Io,
            ReqError::Unavailable(_) => ErrorKind::Unavailable,
            ReqError::Busy(_) => ErrorKind::Busy,
        }
    }
}

/// One typed response. Every success variant answers exactly one
/// [`RequestKind`]; [`Response::Err`] can answer any of them.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `CREATE` succeeded.
    Created,
    /// `ADD` succeeded.
    Added,
    /// `ADDB` succeeded; how many values landed.
    AddedBatch(u64),
    /// `RANK` result.
    Rank(u64),
    /// `QUANTILE` result; `None` while the tenant is empty.
    Quantile(Option<f64>),
    /// `CDF` result, one normalized rank per split point.
    Cdf(Vec<f64>),
    /// `STATS` result.
    Stats(TenantStats),
    /// `LIST` result: all keys, sorted.
    List(Vec<String>),
    /// `SNAPSHOT` succeeded; the new generation.
    Snapshot(u64),
    /// `DROP` succeeded.
    Dropped,
    /// `PING` reply.
    Pong,
    /// `QUIT` acknowledged; the server closes after sending this.
    Bye,
    /// The command failed; `kind` names the [`ReqError`] variant.
    Err {
        /// Which [`ReqError`] variant the server raised.
        kind: ErrorKind,
        /// The error message.
        msg: String,
    },
    /// `TAIL` result. Declared after `Err` so `Err` keeps binary tag 13.
    Tailed(TailSegment),
    /// `MERGE` result: one serialized sketch per shard.
    Merged(Vec<Vec<u8>>),
    /// `METRICS` result: the full Prometheus-style exposition text
    /// (multi-line; the text codec hex-armors it onto one line).
    MetricsText(String),
    /// `EVENTS` result: rendered journal lines, oldest first.
    Events(Vec<String>),
}

impl Response {
    /// Wrap a handler error.
    pub fn from_error(e: &ReqError) -> Response {
        let msg = match e {
            ReqError::InvalidParameter(m)
            | ReqError::IncompatibleMerge(m)
            | ReqError::CorruptBytes(m)
            | ReqError::Io(m)
            | ReqError::Unavailable(m)
            | ReqError::Busy(m) => m.clone(),
        };
        Response::Err {
            kind: ErrorKind::from(e),
            msg,
        }
    }

    /// Split into success-or-[`ReqError`] — the client-side inverse of
    /// [`Response::from_error`].
    pub fn into_result(self) -> Result<Response, ReqError> {
        match self {
            Response::Err { kind, msg } => Err(kind.into_error(msg)),
            ok => Ok(ok),
        }
    }
}

// ---------------------------------------------------------------------------
// Deprecated line-oriented shims (one release): the PR 5 stringly surface,
// kept as thin wrappers over the typed API + text codec.
// ---------------------------------------------------------------------------

/// The pre-typed-API name for [`Request`].
#[deprecated(since = "0.1.0", note = "use `protocol::Request`")]
pub type Command = Request;

/// Render a stringly handler result as one response line.
#[deprecated(
    since = "0.1.0",
    note = "use `protocol::text::encode_response` with a typed `Response`"
)]
pub fn format_response(result: &Result<String, ReqError>) -> String {
    match result {
        Ok(payload) if payload.is_empty() => "OK".to_string(),
        Ok(payload) => format!("OK {payload}"),
        Err(e) => text::encode_response(&Response::from_error(e)),
    }
}

/// Parse a response line back into the stringly handler result.
#[deprecated(
    since = "0.1.0",
    note = "use `protocol::text::decode_response` for a typed `Response`"
)]
pub fn parse_response(line: &str) -> Result<String, ReqError> {
    if let Some(payload) = line.strip_prefix("OK") {
        return Ok(payload.strip_prefix(' ').unwrap_or(payload).to_string());
    }
    match text::decode_error_line(line) {
        Some((kind, msg)) => Err(kind.into_error(msg)),
        None => Err(ReqError::Io(format!("unparseable response: {line}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Accuracy;

    #[test]
    fn commands_parse() {
        assert_eq!(
            text::decode_request("ADD lat 3.25").unwrap(),
            Request::Add {
                key: "lat".into(),
                value: 3.25
            }
        );
        assert_eq!(
            text::decode_request("addb k 1 2.5 -3e4").unwrap(),
            Request::AddBatch {
                key: "k".into(),
                values: vec![1.0, 2.5, -3e4],
                token: None,
            }
        );
        assert_eq!(
            text::decode_request("ADDB k 7 TOKEN=3:9").unwrap(),
            Request::AddBatch {
                key: "k".into(),
                values: vec![7.0],
                token: Some(IdemToken {
                    client_id: 3,
                    seq: 9
                }),
            }
        );
        assert_eq!(
            text::decode_request("QUANTILE k 0.99").unwrap(),
            Request::Quantile {
                key: "k".into(),
                q: 0.99
            }
        );
        assert_eq!(
            text::decode_request("CDF k 1 2 3").unwrap(),
            Request::Cdf {
                key: "k".into(),
                points: vec![1.0, 2.0, 3.0]
            }
        );
        let Request::Create { key, config, token } =
            text::decode_request("CREATE api.p99 EPS=0.02 LRA SHARDS=2").unwrap()
        else {
            panic!("expected CREATE");
        };
        assert_eq!(token, None);
        assert_eq!(key, "api.p99");
        assert_eq!(config.accuracy, Accuracy::EpsDelta(0.02, 0.05));
        assert!(!config.hra);
        assert_eq!(config.shards, 2);
        assert_eq!(text::decode_request("LIST").unwrap(), Request::List);
        assert_eq!(text::decode_request("ping").unwrap(), Request::Ping);
        assert_eq!(text::decode_request("QUIT").unwrap(), Request::Quit);
        assert_eq!(text::decode_request("SNAPSHOT").unwrap(), Request::Snapshot);
        assert_eq!(
            text::decode_request("DROP k").unwrap(),
            Request::Drop {
                key: "k".into(),
                token: None
            }
        );
    }

    #[test]
    fn bad_commands_reject() {
        for line in [
            "",
            "   ",
            "NOPE",
            "ADD",
            "ADD key",
            "ADD key x",
            "ADD key 1 2",
            "ADDB key",
            "CDF key",
            "RANK key one",
            "CREATE",
            "CREATE key BOGUS=1",
        ] {
            assert!(text::decode_request(line).is_err(), "`{line}` accepted");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_stringly_shims_still_roundtrip() {
        for result in [
            Ok(String::new()),
            Ok("42".to_string()),
            Ok("1 2 3".to_string()),
            Err(ReqError::InvalidParameter("no such key `x`".into())),
            Err(ReqError::IncompatibleMerge("different k".into())),
            Err(ReqError::CorruptBytes("checksum".into())),
            Err(ReqError::Io("broken pipe".into())),
        ] {
            let line = format_response(&result);
            assert!(!line.contains('\n'));
            let back = parse_response(&line);
            assert_eq!(back, result, "through `{line}`");
        }
        // The deprecated alias still names the same enum.
        let cmd: Command = Command::parse("PING").unwrap();
        assert_eq!(cmd, Request::Ping);
    }

    #[test]
    fn newlines_in_error_messages_are_flattened() {
        let resp = Response::from_error(&ReqError::Io("two\nlines".into()));
        let line = text::encode_response(&resp);
        assert!(!line.contains('\n'));
        let back = text::decode_response(&line, RequestKind::Ping).unwrap();
        assert_eq!(
            back,
            Response::Err {
                kind: ErrorKind::Io,
                msg: "two lines".into()
            }
        );
    }

    #[test]
    fn error_kinds_roundtrip_through_req_error() {
        for e in [
            ReqError::InvalidParameter("a".into()),
            ReqError::IncompatibleMerge("b".into()),
            ReqError::CorruptBytes("c".into()),
            ReqError::Io("d".into()),
            ReqError::Unavailable("e".into()),
            ReqError::Busy("f".into()),
        ] {
            let resp = Response::from_error(&e);
            assert_eq!(resp.into_result(), Err(e));
        }
    }

    #[test]
    fn idem_tokens_roundtrip_their_text_form() {
        let t = IdemToken {
            client_id: u64::MAX,
            seq: 0,
        };
        assert_eq!(t.to_string().parse::<IdemToken>().unwrap(), t);
        for bad in ["", "1", "1:", ":2", "1:2:3", "x:2", "1:y", "-1:2"] {
            assert!(bad.parse::<IdemToken>().is_err(), "`{bad}` accepted");
        }
    }

    #[test]
    fn f64_display_roundtrips_exactly() {
        // The text codec's losslessness rests on this std guarantee.
        for v in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0, 1e-300] {
            let s = format!("{v}");
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via `{s}`");
        }
    }
}
