//! Line-oriented text codec — one line per message, debuggable with `nc`.
//!
//! ```text
//! CREATE key [EPS=f] [DELTA=f] [K=n] [HRA|LRA] [SCHEDULE=s] [SHARDS=n] [SEED=n] [TOKEN=cid:seq]
//! ADD key value
//! ADDB key v1 v2 v3 ... [TOKEN=cid:seq]
//! RANK key value
//! QUANTILE key q
//! CDF key p1 p2 ...
//! STATS key
//! LIST
//! SNAPSHOT
//! DROP key [TOKEN=cid:seq]
//! PING
//! QUIT
//! TAIL gen offset max_bytes
//! MERGE key
//! METRICS
//! EVENTS max
//! ```
//!
//! The two cluster-layer commands carry binary payloads in their replies
//! (`TAIL` ships raw WAL frames, `MERGE` ships serialized sketches);
//! those cross the text wire lowercase-hex-encoded, with a lone `-` for
//! an empty blob — still one line, still `nc`-debuggable. Production
//! replication uses the binary codec; the text forms exist so every
//! command stays reachable from either transport. The two telemetry
//! replies (`METRICS` exposition text, `EVENTS` journal lines) are armored
//! the same way: multi-line content crosses as hex blobs, one line total.
//!
//! The optional trailing `TOKEN=cid:seq` on the three mutating commands is
//! an [`IdemToken`]; see its docs for the exactly-once retry contract.
//!
//! Responses are `OK[ payload]` or `ERR <kind> <message>`, where `kind`
//! is an [`ErrorKind`] token (`invalid`, `incompatible`, `corrupt`,
//! `io`). This is byte-for-byte the PR 5 wire format — pre-typed-API
//! clients and servers interoperate with this codec unchanged.
//!
//! Text responses are not self-describing: `OK 42` answers both `RANK`
//! and `ADDB`. [`decode_response`] therefore takes the [`RequestKind`] of
//! the request being answered. (The [`binary`](super::binary) codec tags
//! every response and needs no such context.)

use req_core::ReqError;

use super::{ErrorKind, IdemToken, Request, RequestKind, Response, TailSegment};
use crate::config::TenantConfig;

fn to_hex(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        return "-".to_string();
    }
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xF) as usize] as char);
    }
    out
}

fn from_hex(s: &str) -> Result<Vec<u8>, ReqError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    let bad = || ReqError::InvalidParameter(format!("bad hex blob `{s}`"));
    let digits = s.as_bytes();
    if digits.is_empty() || !digits.len().is_multiple_of(2) {
        return Err(bad());
    }
    digits
        .chunks_exact(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16).ok_or_else(bad)?;
            let lo = (pair[1] as char).to_digit(16).ok_or_else(bad)?;
            Ok((hi * 16 + lo) as u8)
        })
        .collect()
}

fn parse_int<T: std::str::FromStr>(token: &str) -> Result<T, ReqError> {
    token
        .parse()
        .map_err(|_| ReqError::InvalidParameter(format!("bad integer `{token}`")))
}

fn parse_f64(token: &str) -> Result<f64, ReqError> {
    token
        .parse()
        .map_err(|_| ReqError::InvalidParameter(format!("bad number `{token}`")))
}

fn parse_f64s(tokens: &[&str]) -> Result<Vec<f64>, ReqError> {
    tokens.iter().map(|t| parse_f64(t)).collect()
}

fn join_f64s(prefix: String, values: &[f64]) -> String {
    let mut out = prefix;
    for v in values {
        out.push(' ');
        out.push_str(&v.to_string());
    }
    out
}

fn push_token(mut line: String, token: &Option<IdemToken>) -> String {
    if let Some(t) = token {
        line.push_str(" TOKEN=");
        line.push_str(&t.to_string());
    }
    line
}

/// Pull the (at most one) `TOKEN=cid:seq` argument out of an argument
/// list, returning the remaining arguments in order. The token may appear
/// anywhere after the key, matching how CREATE options are order-free.
fn split_token<'a>(args: &[&'a str]) -> Result<(Vec<&'a str>, Option<IdemToken>), ReqError> {
    let mut token = None;
    let mut rest = Vec::with_capacity(args.len());
    for arg in args {
        let is_token = arg.len() >= 6 && arg[..6].eq_ignore_ascii_case("TOKEN=");
        if is_token {
            if token.is_some() {
                return Err(ReqError::InvalidParameter(
                    "at most one TOKEN= per command".into(),
                ));
            }
            token = Some(arg[6..].parse()?);
        } else {
            rest.push(*arg);
        }
    }
    Ok((rest, token))
}

/// Render one request as its line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Create { key, config, token } => {
            push_token(format!("CREATE {key} {config}"), token)
        }
        Request::Add { key, value } => format!("ADD {key} {value}"),
        Request::AddBatch { key, values, token } => {
            push_token(join_f64s(format!("ADDB {key}"), values), token)
        }
        Request::Rank { key, value } => format!("RANK {key} {value}"),
        Request::Quantile { key, q } => format!("QUANTILE {key} {q}"),
        Request::Cdf { key, points } => join_f64s(format!("CDF {key}"), points),
        Request::Stats { key } => format!("STATS {key}"),
        Request::List => "LIST".to_string(),
        Request::Snapshot => "SNAPSHOT".to_string(),
        Request::Drop { key, token } => push_token(format!("DROP {key}"), token),
        Request::Ping => "PING".to_string(),
        Request::Quit => "QUIT".to_string(),
        Request::Tail {
            gen,
            offset,
            max_bytes,
        } => format!("TAIL {gen} {offset} {max_bytes}"),
        Request::Merge { key } => format!("MERGE {key}"),
        Request::Metrics => "METRICS".to_string(),
        Request::Events { max } => format!("EVENTS {max}"),
    }
}

/// Parse one request line (verbs are case-insensitive).
pub fn decode_request(line: &str) -> Result<Request, ReqError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let bad = |msg: String| Err(ReqError::InvalidParameter(msg));
    let Some(&verb) = tokens.first() else {
        return bad("empty command".into());
    };
    let args = &tokens[1..];
    let need_key = || -> Result<String, ReqError> {
        args.first()
            .map(|k| k.to_string())
            .ok_or_else(|| ReqError::InvalidParameter(format!("{verb} needs a key")))
    };
    match verb.to_ascii_uppercase().as_str() {
        "CREATE" => {
            let key = need_key()?;
            let (opts, token) = split_token(&args[1..])?;
            let config = TenantConfig::parse(&key, &opts)?;
            Ok(Request::Create { key, config, token })
        }
        "ADD" | "RANK" | "QUANTILE" => {
            let key = need_key()?;
            if args.len() != 2 {
                return bad(format!("{verb} needs exactly `key value`"));
            }
            let value = parse_f64(args[1])?;
            Ok(match verb.to_ascii_uppercase().as_str() {
                "ADD" => Request::Add { key, value },
                "RANK" => Request::Rank { key, value },
                _ => Request::Quantile { key, q: value },
            })
        }
        "ADDB" => {
            let key = need_key()?;
            let (values, token) = split_token(&args[1..])?;
            if values.is_empty() {
                return bad("ADDB needs at least one value".into());
            }
            Ok(Request::AddBatch {
                key,
                values: parse_f64s(&values)?,
                token,
            })
        }
        "CDF" => {
            let key = need_key()?;
            if args.len() < 2 {
                return bad("CDF needs at least one split point".into());
            }
            Ok(Request::Cdf {
                key,
                points: parse_f64s(&args[1..])?,
            })
        }
        "STATS" => Ok(Request::Stats { key: need_key()? }),
        "DROP" => {
            let key = need_key()?;
            let (_, token) = split_token(&args[1..])?;
            Ok(Request::Drop { key, token })
        }
        "LIST" => Ok(Request::List),
        "SNAPSHOT" => Ok(Request::Snapshot),
        "PING" => Ok(Request::Ping),
        "QUIT" => Ok(Request::Quit),
        "TAIL" => {
            if args.len() != 3 {
                return bad("TAIL needs exactly `gen offset max_bytes`".into());
            }
            Ok(Request::Tail {
                gen: parse_int(args[0])?,
                offset: parse_int(args[1])?,
                max_bytes: parse_int(args[2])?,
            })
        }
        "MERGE" => {
            if args.len() != 1 {
                return bad("MERGE needs exactly `key`".into());
            }
            Ok(Request::Merge { key: need_key()? })
        }
        "METRICS" => Ok(Request::Metrics),
        "EVENTS" => {
            if args.len() > 1 {
                return bad("EVENTS takes at most `max`".into());
            }
            Ok(Request::Events {
                max: args
                    .first()
                    .map(|t| parse_int(t))
                    .transpose()?
                    .unwrap_or(64),
            })
        }
        other => bad(format!("unknown command `{other}`")),
    }
}

/// Render one response as its line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Created => "OK created".to_string(),
        Response::Added => "OK".to_string(),
        Response::AddedBatch(n) => format!("OK {n}"),
        Response::Rank(r) => format!("OK {r}"),
        Response::Quantile(Some(v)) => format!("OK {v}"),
        Response::Quantile(None) => "OK none".to_string(),
        Response::Cdf(points) => join_f64s("OK".to_string(), points),
        Response::Stats(stats) => format!("OK {stats}"),
        Response::List(keys) => {
            let mut out = "OK".to_string();
            for key in keys {
                out.push(' ');
                out.push_str(key);
            }
            out
        }
        Response::Snapshot(generation) => format!("OK snapshot {generation}"),
        Response::Dropped => "OK dropped".to_string(),
        Response::Pong => "OK pong".to_string(),
        Response::Bye => "OK bye".to_string(),
        // Responses are line-framed; a message must not smuggle one.
        Response::Err { kind, msg } => {
            format!("ERR {} {}", kind.as_str(), msg.replace(['\r', '\n'], " "))
        }
        Response::Tailed(seg) => format!(
            "OK {} {} {} {} {}",
            seg.gen,
            seg.offset,
            seg.sealed as u8,
            seg.latest_gen,
            to_hex(&seg.frames)
        ),
        Response::Merged(parts) => {
            let mut out = format!("OK {}", parts.len());
            for part in parts {
                out.push(' ');
                out.push_str(&to_hex(part));
            }
            out
        }
        Response::MetricsText(text) => format!("OK {}", to_hex(text.as_bytes())),
        Response::Events(lines) => {
            let mut out = format!("OK {}", lines.len());
            for line in lines {
                out.push(' ');
                out.push_str(&to_hex(line.as_bytes()));
            }
            out
        }
    }
}

/// Parse an `ERR kind msg` line into its typed parts; `None` when the
/// line is not a well-formed error response.
pub fn decode_error_line(line: &str) -> Option<(ErrorKind, String)> {
    let rest = line.strip_prefix("ERR ")?;
    let (kind, msg) = rest.split_once(' ').unwrap_or((rest, ""));
    Some((ErrorKind::from_token(kind)?, msg.to_string()))
}

/// Parse one response line. `kind` is the request the line answers —
/// text payloads are positional, so the response type is context-bound.
pub fn decode_response(line: &str, kind: RequestKind) -> Result<Response, ReqError> {
    if line.starts_with("ERR") {
        return match decode_error_line(line) {
            Some((kind, msg)) => Ok(Response::Err { kind, msg }),
            None => Err(ReqError::Io(format!("unparseable error response: {line}"))),
        };
    }
    let Some(payload) = line.strip_prefix("OK") else {
        return Err(ReqError::Io(format!("unparseable response: {line}")));
    };
    let payload = payload.strip_prefix(' ').unwrap_or(payload);
    let bad = || ReqError::Io(format!("bad {kind:?} reply `{payload}`"));
    Ok(match kind {
        RequestKind::Create => Response::Created,
        RequestKind::Add => Response::Added,
        RequestKind::AddBatch => Response::AddedBatch(payload.parse().map_err(|_| bad())?),
        RequestKind::Rank => Response::Rank(payload.parse().map_err(|_| bad())?),
        RequestKind::Quantile => Response::Quantile(if payload == "none" {
            None
        } else {
            Some(payload.parse().map_err(|_| bad())?)
        }),
        RequestKind::Cdf => Response::Cdf(
            payload
                .split_whitespace()
                .map(|t| t.parse().map_err(|_| bad()))
                .collect::<Result<_, _>>()?,
        ),
        RequestKind::Stats => Response::Stats(payload.parse()?),
        RequestKind::List => {
            Response::List(payload.split_whitespace().map(str::to_string).collect())
        }
        RequestKind::Snapshot => Response::Snapshot(
            payload
                .strip_prefix("snapshot ")
                .and_then(|g| g.parse().ok())
                .ok_or_else(bad)?,
        ),
        RequestKind::Drop => Response::Dropped,
        RequestKind::Ping => {
            if payload != "pong" {
                return Err(bad());
            }
            Response::Pong
        }
        RequestKind::Quit => Response::Bye,
        RequestKind::Tail => {
            let tokens: Vec<&str> = payload.split_whitespace().collect();
            let [gen, offset, sealed, latest_gen, frames] = tokens[..] else {
                return Err(bad());
            };
            Response::Tailed(TailSegment {
                gen: gen.parse().map_err(|_| bad())?,
                offset: offset.parse().map_err(|_| bad())?,
                sealed: match sealed {
                    "0" => false,
                    "1" => true,
                    _ => return Err(bad()),
                },
                latest_gen: latest_gen.parse().map_err(|_| bad())?,
                frames: from_hex(frames).map_err(|_| bad())?,
            })
        }
        RequestKind::Merge => {
            let mut tokens = payload.split_whitespace();
            let count: usize = tokens.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
            let parts: Vec<Vec<u8>> = tokens
                .map(|t| from_hex(t).map_err(|_| bad()))
                .collect::<Result<_, _>>()?;
            if parts.len() != count {
                return Err(bad());
            }
            Response::Merged(parts)
        }
        RequestKind::Metrics => {
            if payload.split_whitespace().count() != 1 {
                return Err(bad());
            }
            let bytes = from_hex(payload.trim()).map_err(|_| bad())?;
            Response::MetricsText(String::from_utf8(bytes).map_err(|_| bad())?)
        }
        RequestKind::Events => {
            let mut tokens = payload.split_whitespace();
            let count: usize = tokens.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
            let lines: Vec<String> = tokens
                .map(|t| {
                    let bytes = from_hex(t).map_err(|_| bad())?;
                    String::from_utf8(bytes).map_err(|_| bad())
                })
                .collect::<Result<_, _>>()?;
            if lines.len() != count {
                return Err(bad());
            }
            Response::Events(lines)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_lines() {
        let token = Some(IdemToken {
            client_id: 7,
            seq: 41,
        });
        let reqs = [
            Request::Create {
                key: "k".into(),
                config: TenantConfig::parse("k", &["K=16", "HRA", "SHARDS=2"]).unwrap(),
                token: None,
            },
            Request::Create {
                key: "k".into(),
                config: TenantConfig::parse("k", &["K=16"]).unwrap(),
                token,
            },
            Request::Add {
                key: "k".into(),
                value: 3.25,
            },
            Request::AddBatch {
                key: "k".into(),
                values: vec![1.0, -2.5, 1e300],
                token: None,
            },
            Request::AddBatch {
                key: "k".into(),
                values: vec![1.0],
                token,
            },
            Request::Rank {
                key: "k".into(),
                value: 0.5,
            },
            Request::Quantile {
                key: "k".into(),
                q: 0.99,
            },
            Request::Cdf {
                key: "k".into(),
                points: vec![1.0, 2.0],
            },
            Request::Stats { key: "k".into() },
            Request::List,
            Request::Snapshot,
            Request::Drop {
                key: "k".into(),
                token: None,
            },
            Request::Drop {
                key: "k".into(),
                token,
            },
            Request::Ping,
            Request::Quit,
            Request::Tail {
                gen: 7,
                offset: 8,
                max_bytes: 4096,
            },
            Request::Merge { key: "k".into() },
            Request::Metrics,
            Request::Events { max: 128 },
        ];
        for req in reqs {
            let line = encode_request(&req);
            assert_eq!(decode_request(&line).unwrap(), req, "through `{line}`");
        }
    }

    #[test]
    fn responses_roundtrip_with_request_context() {
        use crate::service::TenantStats;
        let cases = [
            (RequestKind::Create, Response::Created),
            (RequestKind::Add, Response::Added),
            (RequestKind::AddBatch, Response::AddedBatch(4096)),
            (RequestKind::Rank, Response::Rank(17)),
            (RequestKind::Quantile, Response::Quantile(Some(0.125))),
            (RequestKind::Quantile, Response::Quantile(None)),
            (RequestKind::Cdf, Response::Cdf(vec![0.25, 0.5, 1.0])),
            (
                RequestKind::Stats,
                Response::Stats(TenantStats {
                    n: 10,
                    retained: 10,
                    bytes: 320,
                    k: 32,
                    shards: 2,
                    hra: true,
                    adaptive: false,
                    rotation: 3,
                    snapshot_failures: 1,
                    wal_poisoned: 0,
                    shed: 2,
                    read_only: true,
                }),
            ),
            (
                RequestKind::List,
                Response::List(vec!["a".into(), "b".into()]),
            ),
            (RequestKind::List, Response::List(vec![])),
            (RequestKind::Snapshot, Response::Snapshot(7)),
            (RequestKind::Drop, Response::Dropped),
            (RequestKind::Ping, Response::Pong),
            (RequestKind::Quit, Response::Bye),
            (
                RequestKind::Tail,
                Response::Tailed(TailSegment {
                    gen: 2,
                    offset: 8,
                    sealed: true,
                    latest_gen: 3,
                    frames: vec![0x00, 0xAB, 0xFF],
                }),
            ),
            (
                RequestKind::Tail,
                Response::Tailed(TailSegment {
                    gen: 0,
                    offset: 0,
                    sealed: false,
                    latest_gen: 0,
                    frames: vec![],
                }),
            ),
            (
                RequestKind::Merge,
                Response::Merged(vec![vec![1, 2, 3], vec![], vec![0xFE]]),
            ),
            (RequestKind::Merge, Response::Merged(vec![])),
            (
                RequestKind::Metrics,
                Response::MetricsText("# TYPE a counter\na 1\n".into()),
            ),
            (RequestKind::Metrics, Response::MetricsText(String::new())),
            (
                RequestKind::Events,
                Response::Events(vec!["0 +5us wal_poisoned err=oops".into(), String::new()]),
            ),
            (RequestKind::Events, Response::Events(vec![])),
            (
                RequestKind::Rank,
                Response::Err {
                    kind: ErrorKind::Invalid,
                    msg: "no such key `x`".into(),
                },
            ),
        ];
        for (kind, resp) in cases {
            let line = encode_response(&resp);
            assert!(!line.contains('\n'));
            assert_eq!(
                decode_response(&line, kind).unwrap(),
                resp,
                "through `{line}`"
            );
        }
    }

    #[test]
    fn wire_lines_match_the_pr5_format() {
        // Old clients parse these exact bytes; don't drift.
        assert_eq!(encode_response(&Response::Added), "OK");
        assert_eq!(encode_response(&Response::AddedBatch(3)), "OK 3");
        assert_eq!(encode_response(&Response::Quantile(None)), "OK none");
        assert_eq!(encode_response(&Response::Snapshot(2)), "OK snapshot 2");
        assert_eq!(encode_response(&Response::Pong), "OK pong");
        assert_eq!(
            encode_response(&Response::Err {
                kind: ErrorKind::Corrupt,
                msg: "checksum".into()
            }),
            "ERR corrupt checksum"
        );
        assert_eq!(
            encode_request(&Request::Add {
                key: "lat".into(),
                value: 3.25
            }),
            "ADD lat 3.25"
        );
    }

    #[test]
    fn garbage_responses_are_io_errors() {
        assert!(decode_response("NOPE", RequestKind::Ping).is_err());
        assert!(decode_response("ERR weird x", RequestKind::Ping).is_err());
        assert!(decode_response("OK not-a-number", RequestKind::Rank).is_err());
        assert!(decode_response("OK", RequestKind::Snapshot).is_err());
        assert!(decode_response("OK 1 2 1", RequestKind::Tail).is_err());
        assert!(decode_response("OK 1 2 5 3 -", RequestKind::Tail).is_err());
        assert!(decode_response("OK 1 2 1 3 abc", RequestKind::Tail).is_err());
        assert!(decode_response("OK 2 aa", RequestKind::Merge).is_err());
        assert!(decode_response("OK 1 xyz!", RequestKind::Merge).is_err());
        assert!(decode_response("OK", RequestKind::Metrics).is_err());
        assert!(decode_response("OK aa bb", RequestKind::Metrics).is_err());
        assert!(decode_response("OK zz", RequestKind::Metrics).is_err());
        assert!(
            decode_response("OK ff", RequestKind::Metrics).is_err(),
            "not utf8"
        );
        assert!(decode_response("OK 2 aa", RequestKind::Events).is_err());
        assert!(decode_response("OK x", RequestKind::Events).is_err());
    }

    #[test]
    fn hex_blobs_roundtrip() {
        for blob in [
            vec![],
            vec![0u8],
            vec![0xFF, 0x00, 0x7E],
            (0..=255).collect(),
        ] {
            let hex = to_hex(&blob);
            assert!(!hex.contains(' '));
            assert_eq!(from_hex(&hex).unwrap(), blob, "through `{hex}`");
        }
        assert_eq!(to_hex(&[]), "-");
        for bad in ["", "a", "g0", "0G", "--"] {
            assert!(from_hex(bad).is_err(), "`{bad}` accepted");
        }
    }

    #[test]
    fn malformed_tokens_reject() {
        for line in [
            "ADDB k 1 TOKEN=",
            "ADDB k 1 TOKEN=5",
            "ADDB k 1 TOKEN=a:b",
            "ADDB k 1 TOKEN=1:2 TOKEN=1:3",
            "ADDB k TOKEN=1:2",
            "DROP k TOKEN=1:-2",
        ] {
            assert!(decode_request(line).is_err(), "`{line}` accepted");
        }
        // Token casing is as forgiving as the verbs are.
        assert_eq!(
            decode_request("drop k token=1:2").unwrap(),
            Request::Drop {
                key: "k".into(),
                token: Some(IdemToken {
                    client_id: 1,
                    seq: 2
                }),
            }
        );
    }
}
