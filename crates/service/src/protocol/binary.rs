//! Binary codec — tagged payloads inside [`req_core::frame`] CRC32 frames.
//!
//! Every message is one frame: `len u32 LE | crc32 u32 LE | payload`,
//! where the CRC covers the payload. The payload starts with a one-byte
//! message tag, then the fields in declaration order, all integers
//! little-endian, `f64` as raw IEEE-754 bits (bit-exact, NaN payloads
//! included), strings and vectors length-prefixed with a `u32` count.
//!
//! Request tags count `1..=16` in [`Request`] declaration order;
//! response tags count `1..=17` in [`Response`] declaration order
//! ([`Response::Err`] is tag 13, carrying an [`ErrorKind`] byte plus the
//! message; the cluster-layer `Tailed`/`Merged` replies are 14/15 and the
//! telemetry `MetricsText`/`Events` replies are 16/17).
//! Unlike the [`text`](super::text) codec, responses are
//! self-describing — no request context is needed to decode them, which
//! is what makes deep pipelining tractable.
//!
//! A frame that fails the CRC or length check is a *transport* fault
//! (the connection is torn down); a frame that deframes cleanly but
//! decodes to garbage is a *request* fault (the server answers with a
//! typed [`Response::Err`] and keeps the connection).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use req_core::binary::Packable;
use req_core::frame::{crc32, write_frame, FRAME_HEADER_LEN};
use req_core::ReqError;
use std::io::Read;

use super::{ErrorKind, IdemToken, Request, Response, TailSegment};
use crate::config::TenantConfig;
use crate::service::TenantStats;

/// Largest accepted frame payload — matches the text transport's
/// [`crate::server::MAX_LINE_BYTES`] bound so neither protocol lets one
/// hostile message exhaust memory.
pub const MAX_MESSAGE_PAYLOAD: usize = 8 * 1024 * 1024;

fn need(input: &Bytes, n: usize) -> Result<(), ReqError> {
    if input.remaining() < n {
        Err(ReqError::CorruptBytes(format!(
            "truncated message: need {n} more bytes, have {}",
            input.remaining()
        )))
    } else {
        Ok(())
    }
}

fn get_u8(input: &mut Bytes) -> Result<u8, ReqError> {
    need(input, 1)?;
    Ok(input.get_u8())
}

fn get_u32(input: &mut Bytes) -> Result<u32, ReqError> {
    need(input, 4)?;
    Ok(input.get_u32_le())
}

fn get_u64(input: &mut Bytes) -> Result<u64, ReqError> {
    need(input, 8)?;
    Ok(input.get_u64_le())
}

fn get_f64(input: &mut Bytes) -> Result<f64, ReqError> {
    Ok(f64::from_bits(get_u64(input)?))
}

fn put_f64s(out: &mut BytesMut, values: &[f64]) {
    out.put_u32_le(values.len() as u32);
    for v in values {
        out.put_u64_le(v.to_bits());
    }
}

fn get_f64s(input: &mut Bytes) -> Result<Vec<f64>, ReqError> {
    let count = get_u32(input)? as usize;
    // 8 bytes per value must already be present — a huge declared count
    // with a short payload is corrupt, not an allocation request.
    need(input, count.saturating_mul(8))?;
    (0..count).map(|_| get_f64(input)).collect()
}

fn put_bytes(out: &mut BytesMut, bytes: &[u8]) {
    out.put_u32_le(bytes.len() as u32);
    out.put_slice(bytes);
}

fn get_bytes(input: &mut Bytes) -> Result<Vec<u8>, ReqError> {
    let count = get_u32(input)? as usize;
    // The declared length must already be present — a huge count with a
    // short payload is corrupt, not an allocation request.
    need(input, count)?;
    let mut bytes = vec![0u8; count];
    input.copy_to_slice(&mut bytes);
    Ok(bytes)
}

fn put_token(out: &mut BytesMut, token: &Option<IdemToken>) {
    match token {
        Some(t) => {
            out.put_u8(1);
            out.put_u64_le(t.client_id);
            out.put_u64_le(t.seq);
        }
        None => out.put_u8(0),
    }
}

fn get_token(input: &mut Bytes) -> Result<Option<IdemToken>, ReqError> {
    match get_u8(input)? {
        0 => Ok(None),
        1 => Ok(Some(IdemToken {
            client_id: get_u64(input)?,
            seq: get_u64(input)?,
        })),
        other => Err(ReqError::CorruptBytes(format!(
            "bad token presence byte {other}"
        ))),
    }
}

const REQ_CREATE: u8 = 1;
const REQ_ADD: u8 = 2;
const REQ_ADD_BATCH: u8 = 3;
const REQ_RANK: u8 = 4;
const REQ_QUANTILE: u8 = 5;
const REQ_CDF: u8 = 6;
const REQ_STATS: u8 = 7;
const REQ_LIST: u8 = 8;
const REQ_SNAPSHOT: u8 = 9;
const REQ_DROP: u8 = 10;
const REQ_PING: u8 = 11;
const REQ_QUIT: u8 = 12;
const REQ_TAIL: u8 = 13;
const REQ_MERGE: u8 = 14;
const REQ_METRICS: u8 = 15;
const REQ_EVENTS: u8 = 16;

const RESP_CREATED: u8 = 1;
const RESP_ADDED: u8 = 2;
const RESP_ADDED_BATCH: u8 = 3;
const RESP_RANK: u8 = 4;
const RESP_QUANTILE: u8 = 5;
const RESP_CDF: u8 = 6;
const RESP_STATS: u8 = 7;
const RESP_LIST: u8 = 8;
const RESP_SNAPSHOT: u8 = 9;
const RESP_DROPPED: u8 = 10;
const RESP_PONG: u8 = 11;
const RESP_BYE: u8 = 12;
const RESP_ERR: u8 = 13;
const RESP_TAILED: u8 = 14;
const RESP_MERGED: u8 = 15;
const RESP_METRICS: u8 = 16;
const RESP_EVENTS: u8 = 17;

impl ErrorKind {
    fn wire_byte(self) -> u8 {
        match self {
            ErrorKind::Invalid => 1,
            ErrorKind::Incompatible => 2,
            ErrorKind::Corrupt => 3,
            ErrorKind::Io => 4,
            ErrorKind::Unavailable => 5,
            ErrorKind::Busy => 6,
        }
    }

    fn from_wire_byte(b: u8) -> Result<ErrorKind, ReqError> {
        Ok(match b {
            1 => ErrorKind::Invalid,
            2 => ErrorKind::Incompatible,
            3 => ErrorKind::Corrupt,
            4 => ErrorKind::Io,
            5 => ErrorKind::Unavailable,
            6 => ErrorKind::Busy,
            other => {
                return Err(ReqError::CorruptBytes(format!(
                    "unknown error kind byte {other}"
                )))
            }
        })
    }
}

fn encode_request_payload(req: &Request, out: &mut BytesMut) {
    match req {
        Request::Create { key, config, token } => {
            out.put_u8(REQ_CREATE);
            key.pack(out);
            config.encode(out);
            put_token(out, token);
        }
        Request::Add { key, value } => {
            out.put_u8(REQ_ADD);
            key.pack(out);
            out.put_u64_le(value.to_bits());
        }
        Request::AddBatch { key, values, token } => {
            out.put_u8(REQ_ADD_BATCH);
            key.pack(out);
            put_f64s(out, values);
            put_token(out, token);
        }
        Request::Rank { key, value } => {
            out.put_u8(REQ_RANK);
            key.pack(out);
            out.put_u64_le(value.to_bits());
        }
        Request::Quantile { key, q } => {
            out.put_u8(REQ_QUANTILE);
            key.pack(out);
            out.put_u64_le(q.to_bits());
        }
        Request::Cdf { key, points } => {
            out.put_u8(REQ_CDF);
            key.pack(out);
            put_f64s(out, points);
        }
        Request::Stats { key } => {
            out.put_u8(REQ_STATS);
            key.pack(out);
        }
        Request::List => out.put_u8(REQ_LIST),
        Request::Snapshot => out.put_u8(REQ_SNAPSHOT),
        Request::Drop { key, token } => {
            out.put_u8(REQ_DROP);
            key.pack(out);
            put_token(out, token);
        }
        Request::Ping => out.put_u8(REQ_PING),
        Request::Quit => out.put_u8(REQ_QUIT),
        Request::Tail {
            gen,
            offset,
            max_bytes,
        } => {
            out.put_u8(REQ_TAIL);
            out.put_u64_le(*gen);
            out.put_u64_le(*offset);
            out.put_u32_le(*max_bytes);
        }
        Request::Merge { key } => {
            out.put_u8(REQ_MERGE);
            key.pack(out);
        }
        Request::Metrics => out.put_u8(REQ_METRICS),
        Request::Events { max } => {
            out.put_u8(REQ_EVENTS);
            out.put_u32_le(*max);
        }
    }
}

fn encode_response_payload(resp: &Response, out: &mut BytesMut) {
    match resp {
        Response::Created => out.put_u8(RESP_CREATED),
        Response::Added => out.put_u8(RESP_ADDED),
        Response::AddedBatch(n) => {
            out.put_u8(RESP_ADDED_BATCH);
            out.put_u64_le(*n);
        }
        Response::Rank(r) => {
            out.put_u8(RESP_RANK);
            out.put_u64_le(*r);
        }
        Response::Quantile(q) => {
            out.put_u8(RESP_QUANTILE);
            match q {
                Some(v) => {
                    out.put_u8(1);
                    out.put_u64_le(v.to_bits());
                }
                None => out.put_u8(0),
            }
        }
        Response::Cdf(points) => {
            out.put_u8(RESP_CDF);
            put_f64s(out, points);
        }
        Response::Stats(s) => {
            out.put_u8(RESP_STATS);
            out.put_u64_le(s.n);
            out.put_u64_le(s.retained);
            out.put_u64_le(s.bytes);
            out.put_u32_le(s.k);
            out.put_u32_le(s.shards);
            out.put_u8(s.hra as u8);
            out.put_u8(s.adaptive as u8);
            out.put_u64_le(s.rotation);
            out.put_u64_le(s.snapshot_failures);
            out.put_u64_le(s.wal_poisoned);
            out.put_u64_le(s.shed);
            out.put_u8(s.read_only as u8);
        }
        Response::List(keys) => {
            out.put_u8(RESP_LIST);
            out.put_u32_le(keys.len() as u32);
            for key in keys {
                key.pack(out);
            }
        }
        Response::Snapshot(generation) => {
            out.put_u8(RESP_SNAPSHOT);
            out.put_u64_le(*generation);
        }
        Response::Dropped => out.put_u8(RESP_DROPPED),
        Response::Pong => out.put_u8(RESP_PONG),
        Response::Bye => out.put_u8(RESP_BYE),
        Response::Err { kind, msg } => {
            out.put_u8(RESP_ERR);
            out.put_u8(kind.wire_byte());
            msg.pack(out);
        }
        Response::Tailed(seg) => {
            out.put_u8(RESP_TAILED);
            out.put_u64_le(seg.gen);
            out.put_u64_le(seg.offset);
            out.put_u8(seg.sealed as u8);
            out.put_u64_le(seg.latest_gen);
            put_bytes(out, &seg.frames);
        }
        Response::Merged(parts) => {
            out.put_u8(RESP_MERGED);
            out.put_u32_le(parts.len() as u32);
            for part in parts {
                put_bytes(out, part);
            }
        }
        Response::MetricsText(text) => {
            out.put_u8(RESP_METRICS);
            text.pack(out);
        }
        Response::Events(lines) => {
            out.put_u8(RESP_EVENTS);
            out.put_u32_le(lines.len() as u32);
            for line in lines {
                line.pack(out);
            }
        }
    }
}

/// Append one request as a complete CRC32 frame.
pub fn write_request(out: &mut BytesMut, req: &Request) {
    let mut payload = BytesMut::new();
    encode_request_payload(req, &mut payload);
    write_frame(out, &payload);
}

/// One request as a complete CRC32 frame.
pub fn encode_request(req: &Request) -> Bytes {
    let mut out = BytesMut::new();
    write_request(&mut out, req);
    out.freeze()
}

/// Append one response as a complete CRC32 frame.
pub fn write_response(out: &mut BytesMut, resp: &Response) {
    let mut payload = BytesMut::new();
    encode_response_payload(resp, &mut payload);
    write_frame(out, &payload);
}

/// One response as a complete CRC32 frame.
pub fn encode_response(resp: &Response) -> Bytes {
    let mut out = BytesMut::new();
    write_response(&mut out, resp);
    out.freeze()
}

fn finish<T>(value: T, input: &Bytes, what: &str) -> Result<T, ReqError> {
    if input.has_remaining() {
        return Err(ReqError::CorruptBytes(format!(
            "{} trailing bytes after {what}",
            input.remaining()
        )));
    }
    Ok(value)
}

/// Decode one request from a deframed payload (the bytes the frame's CRC
/// covered). Trailing bytes are rejected.
pub fn decode_request(mut payload: Bytes) -> Result<Request, ReqError> {
    let tag = get_u8(&mut payload)?;
    let req = match tag {
        REQ_CREATE => {
            let key = String::unpack(&mut payload)?;
            let config = TenantConfig::decode(&mut payload)?;
            let token = get_token(&mut payload)?;
            Request::Create { key, config, token }
        }
        REQ_ADD => Request::Add {
            key: String::unpack(&mut payload)?,
            value: get_f64(&mut payload)?,
        },
        REQ_ADD_BATCH => Request::AddBatch {
            key: String::unpack(&mut payload)?,
            values: get_f64s(&mut payload)?,
            token: get_token(&mut payload)?,
        },
        REQ_RANK => Request::Rank {
            key: String::unpack(&mut payload)?,
            value: get_f64(&mut payload)?,
        },
        REQ_QUANTILE => Request::Quantile {
            key: String::unpack(&mut payload)?,
            q: get_f64(&mut payload)?,
        },
        REQ_CDF => Request::Cdf {
            key: String::unpack(&mut payload)?,
            points: get_f64s(&mut payload)?,
        },
        REQ_STATS => Request::Stats {
            key: String::unpack(&mut payload)?,
        },
        REQ_LIST => Request::List,
        REQ_SNAPSHOT => Request::Snapshot,
        REQ_DROP => Request::Drop {
            key: String::unpack(&mut payload)?,
            token: get_token(&mut payload)?,
        },
        REQ_PING => Request::Ping,
        REQ_QUIT => Request::Quit,
        REQ_TAIL => Request::Tail {
            gen: get_u64(&mut payload)?,
            offset: get_u64(&mut payload)?,
            max_bytes: get_u32(&mut payload)?,
        },
        REQ_MERGE => Request::Merge {
            key: String::unpack(&mut payload)?,
        },
        REQ_METRICS => Request::Metrics,
        REQ_EVENTS => Request::Events {
            max: get_u32(&mut payload)?,
        },
        other => {
            return Err(ReqError::CorruptBytes(format!(
                "unknown request tag {other}"
            )))
        }
    };
    finish(req, &payload, "request")
}

/// Decode one response from a deframed payload. Trailing bytes are
/// rejected.
pub fn decode_response(mut payload: Bytes) -> Result<Response, ReqError> {
    let tag = get_u8(&mut payload)?;
    let resp = match tag {
        RESP_CREATED => Response::Created,
        RESP_ADDED => Response::Added,
        RESP_ADDED_BATCH => Response::AddedBatch(get_u64(&mut payload)?),
        RESP_RANK => Response::Rank(get_u64(&mut payload)?),
        RESP_QUANTILE => match get_u8(&mut payload)? {
            0 => Response::Quantile(None),
            1 => Response::Quantile(Some(get_f64(&mut payload)?)),
            other => {
                return Err(ReqError::CorruptBytes(format!(
                    "bad quantile presence byte {other}"
                )))
            }
        },
        RESP_CDF => Response::Cdf(get_f64s(&mut payload)?),
        RESP_STATS => Response::Stats(TenantStats {
            n: get_u64(&mut payload)?,
            retained: get_u64(&mut payload)?,
            bytes: get_u64(&mut payload)?,
            k: get_u32(&mut payload)?,
            shards: get_u32(&mut payload)?,
            hra: get_u8(&mut payload)? != 0,
            adaptive: get_u8(&mut payload)? != 0,
            rotation: get_u64(&mut payload)?,
            snapshot_failures: get_u64(&mut payload)?,
            wal_poisoned: get_u64(&mut payload)?,
            shed: get_u64(&mut payload)?,
            read_only: get_u8(&mut payload)? != 0,
        }),
        RESP_LIST => {
            let count = get_u32(&mut payload)? as usize;
            // 4 bytes of length prefix per key must already be present.
            need(&payload, count.saturating_mul(4))?;
            Response::List(
                (0..count)
                    .map(|_| String::unpack(&mut payload))
                    .collect::<Result<_, _>>()?,
            )
        }
        RESP_SNAPSHOT => Response::Snapshot(get_u64(&mut payload)?),
        RESP_DROPPED => Response::Dropped,
        RESP_PONG => Response::Pong,
        RESP_BYE => Response::Bye,
        RESP_ERR => Response::Err {
            kind: ErrorKind::from_wire_byte(get_u8(&mut payload)?)?,
            msg: String::unpack(&mut payload)?,
        },
        RESP_TAILED => Response::Tailed(TailSegment {
            gen: get_u64(&mut payload)?,
            offset: get_u64(&mut payload)?,
            sealed: match get_u8(&mut payload)? {
                0 => false,
                1 => true,
                other => return Err(ReqError::CorruptBytes(format!("bad sealed byte {other}"))),
            },
            latest_gen: get_u64(&mut payload)?,
            frames: get_bytes(&mut payload)?,
        }),
        RESP_MERGED => {
            let count = get_u32(&mut payload)? as usize;
            // 4 bytes of length prefix per part must already be present.
            need(&payload, count.saturating_mul(4))?;
            Response::Merged(
                (0..count)
                    .map(|_| get_bytes(&mut payload))
                    .collect::<Result<_, _>>()?,
            )
        }
        RESP_METRICS => Response::MetricsText(String::unpack(&mut payload)?),
        RESP_EVENTS => {
            let count = get_u32(&mut payload)? as usize;
            // 4 bytes of length prefix per line must already be present.
            need(&payload, count.saturating_mul(4))?;
            Response::Events(
                (0..count)
                    .map(|_| String::unpack(&mut payload))
                    .collect::<Result<_, _>>()?,
            )
        }
        other => {
            return Err(ReqError::CorruptBytes(format!(
                "unknown response tag {other}"
            )))
        }
    };
    finish(resp, &payload, "response")
}

/// Blocking read of one frame from `r`, verifying length bound and CRC.
/// Returns the deframed payload. For event loops, parse incrementally
/// with [`try_deframe`] instead.
pub fn read_frame_blocking<R: Read>(r: &mut R) -> Result<Bytes, ReqError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let want_crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_MESSAGE_PAYLOAD {
        return Err(ReqError::CorruptBytes(format!(
            "frame payload {len} exceeds {MAX_MESSAGE_PAYLOAD} bytes"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != want_crc {
        return Err(ReqError::CorruptBytes("frame checksum mismatch".into()));
    }
    Ok(Bytes::from(payload))
}

/// Incremental deframing for event loops: inspect `buf[offset..]` for one
/// complete frame.
///
/// * `Ok(None)` — not enough bytes yet; read more and retry.
/// * `Ok(Some((payload, consumed)))` — one verified payload; advance the
///   buffer cursor by `consumed` bytes.
/// * `Err(_)` — the stream is unframeable (oversized length or CRC
///   mismatch); the connection should be torn down.
pub fn try_deframe(buf: &[u8], offset: usize) -> Result<Option<(Bytes, usize)>, ReqError> {
    let avail = &buf[offset..];
    if avail.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes(avail[0..4].try_into().unwrap()) as usize;
    let want_crc = u32::from_le_bytes(avail[4..8].try_into().unwrap());
    if len > MAX_MESSAGE_PAYLOAD {
        return Err(ReqError::CorruptBytes(format!(
            "frame payload {len} exceeds {MAX_MESSAGE_PAYLOAD} bytes"
        )));
    }
    let Some(payload) = avail.get(FRAME_HEADER_LEN..FRAME_HEADER_LEN + len) else {
        return Ok(None);
    };
    if crc32(payload) != want_crc {
        return Err(ReqError::CorruptBytes("frame checksum mismatch".into()));
    }
    Ok(Some((
        Bytes::copy_from_slice(payload),
        FRAME_HEADER_LEN + len,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use req_core::frame::read_frame;

    fn sample_requests() -> Vec<Request> {
        let token = Some(IdemToken {
            client_id: u64::MAX,
            seq: 3,
        });
        vec![
            Request::Create {
                key: "api.p99".into(),
                config: TenantConfig::parse("api.p99", &["EPS=0.02", "LRA", "SHARDS=2"]).unwrap(),
                token: None,
            },
            Request::Create {
                key: "api.p99".into(),
                config: TenantConfig::parse("api.p99", &["K=16"]).unwrap(),
                token,
            },
            Request::Add {
                key: "k".into(),
                value: f64::NAN, // bit-exact: text can't do this
            },
            Request::AddBatch {
                key: "k".into(),
                values: vec![1.0, -0.0, 1e-300],
                token: None,
            },
            Request::AddBatch {
                key: "k".into(),
                values: vec![1.0],
                token,
            },
            Request::Rank {
                key: "k".into(),
                value: 0.5,
            },
            Request::Quantile {
                key: "k".into(),
                q: 0.99,
            },
            Request::Cdf {
                key: "k".into(),
                points: vec![],
            },
            Request::Stats { key: "k".into() },
            Request::List,
            Request::Snapshot,
            Request::Drop {
                key: "k".into(),
                token: None,
            },
            Request::Drop {
                key: "k".into(),
                token,
            },
            Request::Ping,
            Request::Quit,
            Request::Tail {
                gen: 3,
                offset: u64::MAX,
                max_bytes: 65_536,
            },
            Request::Merge { key: "k".into() },
            Request::Metrics,
            Request::Events { max: 256 },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Created,
            Response::Added,
            Response::AddedBatch(u64::MAX),
            Response::Rank(0),
            Response::Quantile(Some(-0.0)),
            Response::Quantile(None),
            Response::Cdf(vec![0.25, 0.5, 1.0]),
            Response::Stats(TenantStats {
                n: 1,
                retained: 2,
                bytes: 3,
                k: 4,
                shards: 5,
                hra: true,
                adaptive: true,
                rotation: 6,
                snapshot_failures: 7,
                wal_poisoned: 8,
                shed: 9,
                read_only: true,
            }),
            Response::List(vec!["a".into(), "b".into()]),
            Response::List(vec![]),
            Response::Snapshot(9),
            Response::Dropped,
            Response::Pong,
            Response::Bye,
            Response::Err {
                kind: ErrorKind::Incompatible,
                msg: "different k".into(),
            },
            Response::Err {
                kind: ErrorKind::Unavailable,
                msg: "read-only".into(),
            },
            Response::Err {
                kind: ErrorKind::Busy,
                msg: "shed".into(),
            },
            Response::Tailed(TailSegment {
                gen: 2,
                offset: 8,
                sealed: true,
                latest_gen: 4,
                frames: vec![0xAB, 0x00, 0xFF],
            }),
            Response::Tailed(TailSegment {
                gen: 0,
                offset: 0,
                sealed: false,
                latest_gen: 0,
                frames: vec![],
            }),
            Response::Merged(vec![vec![1, 2, 3], vec![], vec![0xFE]]),
            Response::Merged(vec![]),
            Response::MetricsText("# TYPE x counter\nx 1\n".into()),
            Response::MetricsText(String::new()),
            Response::Events(vec!["0 +12us wal_healed gen=2".into(), String::new()]),
            Response::Events(vec![]),
        ]
    }

    fn bits_eq(a: &Request, b: &Request) -> bool {
        // PartialEq fails on NaN; compare through the encoding instead.
        encode_request(a) == encode_request(b)
    }

    #[test]
    fn requests_roundtrip_through_frames() {
        for req in sample_requests() {
            let mut framed = encode_request(&req);
            let payload = read_frame(&mut framed).unwrap();
            assert!(framed.is_empty(), "frame fully consumed");
            let back = decode_request(payload).unwrap();
            assert!(bits_eq(&req, &back), "{req:?} != {back:?}");
        }
    }

    #[test]
    fn responses_roundtrip_through_frames() {
        for resp in sample_responses() {
            let mut framed = encode_response(&resp);
            let payload = read_frame(&mut framed).unwrap();
            let back = decode_response(payload).unwrap();
            assert_eq!(encode_response(&back), encode_response(&resp));
        }
    }

    #[test]
    fn pipelined_frames_deframe_incrementally() {
        let reqs = sample_requests();
        let mut wire = BytesMut::new();
        for req in &reqs {
            write_request(&mut wire, req);
        }
        let wire = wire.freeze();
        // Feed the stream byte-by-byte: every prefix either yields the
        // next complete frame or asks for more bytes — never an error.
        let mut offset = 0;
        let mut decoded = Vec::new();
        for end in 0..=wire.len() {
            while let Some((payload, used)) = try_deframe(&wire[..end], offset).unwrap() {
                decoded.push(decode_request(payload).unwrap());
                offset += used;
            }
        }
        assert_eq!(decoded.len(), reqs.len());
        for (a, b) in reqs.iter().zip(&decoded) {
            assert!(bits_eq(a, b));
        }
    }

    #[test]
    fn corruption_is_caught() {
        // Flip one payload byte: CRC mismatch.
        let mut framed = encode_request(&Request::Ping).to_vec();
        let last = framed.len() - 1;
        framed[last] ^= 0x40;
        assert!(matches!(
            try_deframe(&framed, 0),
            Err(ReqError::CorruptBytes(_))
        ));
        // Oversized declared length: rejected before allocation.
        let mut huge = ((MAX_MESSAGE_PAYLOAD + 1) as u32).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 4]);
        assert!(try_deframe(&huge, 0).is_err());
        // Valid frame, garbage payload: decode-level corrupt error.
        let framed = req_core::frame::frame(&[0xEE, 0xEE]);
        let mut framed_bytes = framed.clone();
        let payload = read_frame(&mut framed_bytes).unwrap();
        assert!(matches!(
            decode_request(payload),
            Err(ReqError::CorruptBytes(_))
        ));
        // Trailing bytes after a valid message: rejected.
        let mut padded = BytesMut::new();
        padded.put_u8(11); // REQ_PING
        padded.put_u8(0xFF);
        assert!(matches!(
            decode_request(padded.freeze()),
            Err(ReqError::CorruptBytes(_))
        ));
    }

    #[test]
    fn truncated_payloads_never_panic() {
        // Every strict prefix of every encoded payload must decode to a
        // clean error (not a panic, not a bogus success).
        for req in sample_requests() {
            let mut framed = encode_request(&req);
            let payload = read_frame(&mut framed).unwrap();
            for cut in 0..payload.len() {
                let prefix = Bytes::copy_from_slice(&payload[..cut]);
                assert!(decode_request(prefix).is_err(), "{req:?} cut at {cut}");
            }
        }
        for resp in sample_responses() {
            let mut framed = encode_response(&resp);
            let payload = read_frame(&mut framed).unwrap();
            for cut in 0..payload.len() {
                let prefix = Bytes::copy_from_slice(&payload[..cut]);
                assert!(decode_response(prefix).is_err(), "{resp:?} cut at {cut}");
            }
        }
    }
}
