//! Typed TCP client for the service's line protocol.
//!
//! One [`ReqClient`] wraps one connection; every method is a synchronous
//! request/response round-trip. Remote failures come back as the same
//! [`ReqError`] variants the server raised (see [`crate::protocol`]), so
//! callers handle local and remote errors uniformly.

use req_core::ReqError;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::parse_response;
use crate::service::TenantStats;

/// Options for [`ReqClient::create`] — the typed form of the `CREATE`
/// option tokens. `None` fields take server defaults.
#[derive(Debug, Clone, Default)]
pub struct CreateOptions {
    /// Relative-error target (switches the tenant to `(ε, δ)` sizing).
    pub eps: Option<f64>,
    /// Failure probability (requires `eps`).
    pub delta: Option<f64>,
    /// Direct section size (ignored when `eps` is set).
    pub k: Option<u32>,
    /// Rank-accuracy orientation: `Some(true)` = HRA, `Some(false)` = LRA.
    pub hra: Option<bool>,
    /// `true` = adaptive schedule, `false` = standard.
    pub adaptive: Option<bool>,
    /// Ingest shard count.
    pub shards: Option<u32>,
    /// Explicit RNG seed.
    pub seed: Option<u64>,
}

impl CreateOptions {
    fn tokens(&self) -> String {
        let mut out = String::new();
        if let Some(eps) = self.eps {
            out.push_str(&format!(" EPS={eps}"));
        }
        if let Some(delta) = self.delta {
            out.push_str(&format!(" DELTA={delta}"));
        }
        if let Some(k) = self.k {
            out.push_str(&format!(" K={k}"));
        }
        if let Some(hra) = self.hra {
            out.push_str(if hra { " HRA" } else { " LRA" });
        }
        if let Some(adaptive) = self.adaptive {
            out.push_str(if adaptive {
                " SCHEDULE=adaptive"
            } else {
                " SCHEDULE=standard"
            });
        }
        if let Some(shards) = self.shards {
            out.push_str(&format!(" SHARDS={shards}"));
        }
        if let Some(seed) = self.seed {
            out.push_str(&format!(" SEED={seed}"));
        }
        out
    }
}

/// A connected protocol client.
#[derive(Debug)]
pub struct ReqClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ReqClient {
    /// Connect to a running `req-server`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ReqError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(300)))?;
        let writer = stream.try_clone()?;
        Ok(ReqClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one raw request line and return the response payload. The
    /// typed methods below all funnel through here; it is public for
    /// `req-cli`'s pass-through mode.
    pub fn roundtrip(&mut self, line: &str) -> Result<String, ReqError> {
        if line.contains('\n') || line.contains('\r') {
            return Err(ReqError::InvalidParameter(
                "request must be a single line".into(),
            ));
        }
        // One write per request (see server.rs on TCP_NODELAY packets).
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ReqError::Io("server closed the connection".into()));
        }
        parse_response(response.trim_end_matches(['\r', '\n']))
    }

    /// `CREATE key` with options.
    pub fn create(&mut self, key: &str, opts: &CreateOptions) -> Result<(), ReqError> {
        self.roundtrip(&format!("CREATE {key}{}", opts.tokens()))
            .map(|_| ())
    }

    /// `ADD key value`.
    pub fn add(&mut self, key: &str, value: f64) -> Result<(), ReqError> {
        self.roundtrip(&format!("ADD {key} {value}")).map(|_| ())
    }

    /// `ADDB key v…` — returns how many values the server ingested.
    pub fn add_batch(&mut self, key: &str, values: &[f64]) -> Result<u64, ReqError> {
        if values.is_empty() {
            return Ok(0);
        }
        let mut line = format!("ADDB {key}");
        for v in values {
            line.push(' ');
            line.push_str(&v.to_string());
        }
        let payload = self.roundtrip(&line)?;
        payload
            .parse()
            .map_err(|_| ReqError::Io(format!("bad ADDB reply `{payload}`")))
    }

    /// `RANK key value`.
    pub fn rank(&mut self, key: &str, value: f64) -> Result<u64, ReqError> {
        let payload = self.roundtrip(&format!("RANK {key} {value}"))?;
        payload
            .parse()
            .map_err(|_| ReqError::Io(format!("bad RANK reply `{payload}`")))
    }

    /// `QUANTILE key q`; `None` while the tenant is empty.
    pub fn quantile(&mut self, key: &str, q: f64) -> Result<Option<f64>, ReqError> {
        let payload = self.roundtrip(&format!("QUANTILE {key} {q}"))?;
        if payload == "none" {
            return Ok(None);
        }
        payload
            .parse()
            .map(Some)
            .map_err(|_| ReqError::Io(format!("bad QUANTILE reply `{payload}`")))
    }

    /// `CDF key p…`.
    pub fn cdf(&mut self, key: &str, points: &[f64]) -> Result<Vec<f64>, ReqError> {
        let mut line = format!("CDF {key}");
        for p in points {
            line.push(' ');
            line.push_str(&p.to_string());
        }
        let payload = self.roundtrip(&line)?;
        payload
            .split_whitespace()
            .map(|t| {
                t.parse()
                    .map_err(|_| ReqError::Io(format!("bad CDF reply `{payload}`")))
            })
            .collect()
    }

    /// `STATS key`.
    pub fn stats(&mut self, key: &str) -> Result<TenantStats, ReqError> {
        self.roundtrip(&format!("STATS {key}"))?.parse()
    }

    /// `LIST` — all keys, sorted.
    pub fn list(&mut self) -> Result<Vec<String>, ReqError> {
        Ok(self
            .roundtrip("LIST")?
            .split_whitespace()
            .map(str::to_string)
            .collect())
    }

    /// `SNAPSHOT` — force a snapshot, returning the new generation.
    pub fn snapshot(&mut self) -> Result<u64, ReqError> {
        let payload = self.roundtrip("SNAPSHOT")?;
        payload
            .strip_prefix("snapshot ")
            .and_then(|g| g.parse().ok())
            .ok_or_else(|| ReqError::Io(format!("bad SNAPSHOT reply `{payload}`")))
    }

    /// `DROP key`.
    pub fn drop_key(&mut self, key: &str) -> Result<(), ReqError> {
        self.roundtrip(&format!("DROP {key}")).map(|_| ())
    }

    /// `PING`.
    pub fn ping(&mut self) -> Result<(), ReqError> {
        let payload = self.roundtrip("PING")?;
        if payload == "pong" {
            Ok(())
        } else {
            Err(ReqError::Io(format!("bad PING reply `{payload}`")))
        }
    }

    /// `QUIT` — ask the server to close this connection.
    pub fn quit(mut self) -> Result<(), ReqError> {
        self.roundtrip("QUIT").map(|_| ())
    }
}
