//! Typed clients for the service's wire API.
//!
//! [`ClientApi`] is the transport-independent surface: one required
//! method ([`ClientApi::call`]) sends a typed [`Request`] and returns the
//! typed [`Response`]; every command gets a typed convenience method
//! (`rank()`, `quantile()`, `add_batch()`, …) as a default on the trait.
//! [`ReqClient`] implements it over the text codec (one line per
//! message); `req_evented::ReqBinClient` implements the same trait over
//! CRC32-framed binary messages — callers swap transports without
//! touching call sites.
//!
//! Remote failures come back as the same [`ReqError`] variants the server
//! raised (the error kind round-trips through [`Response::Err`]), so
//! callers handle local and remote errors uniformly.
//!
//! ## Resilience
//!
//! [`ReqClient`] carries a [`RetryPolicy`]: connect/read/write timeouts,
//! plus capped exponential backoff with deterministic jitter. Mutations
//! (`CREATE`/`ADDB`/`DROP`) are stamped with an idempotency token
//! (`client_id:seq`) before the first send, so a retry after an ambiguous
//! timeout re-sends the *same* token and the server's dedup window applies
//! it exactly once — even across a server crash and recovery. Queries are
//! naturally idempotent and retry freely; a plain `ADD` carries no token
//! and is never auto-retried.

use req_core::ReqError;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::config::TenantConfig;
use crate::faults::mix;
use crate::protocol::{text, IdemToken, Request, Response, TailSegment};
use crate::service::TenantStats;

/// Timeouts and retry/backoff settings for resilient clients.
///
/// Backoff for attempt `k` is `min(base_backoff · 2^k, max_backoff)`,
/// scaled into `[cap/2, cap)` by a deterministic jitter derived from
/// `seed` and `k` — two clients with different seeds desynchronize their
/// retry storms, yet a given client replays exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-response read timeout.
    pub read_timeout: Duration,
    /// Per-request write timeout.
    pub write_timeout: Duration,
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// First retry's backoff cap.
    pub base_backoff: Duration,
    /// Backoff ceiling for late retries.
    pub max_backoff: Duration,
    /// Jitter seed (deterministic per client).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_retries: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (timeouts still apply).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry `attempt` (0-based): deterministic, jittered,
    /// always within `[cap/2, cap)` where
    /// `cap = min(base_backoff · 2^attempt, max_backoff)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base = self.base_backoff.as_nanos() as u64;
        let max = self.max_backoff.as_nanos() as u64;
        let cap = base.saturating_mul(1u64 << attempt.min(32)).min(max).max(1);
        // Jitter fraction in [0, 1): the top 53 bits of a SplitMix64 hash
        // of (seed, attempt), exactly representable in an f64.
        let frac = (mix(self.seed ^ mix(u64::from(attempt))) >> 11) as f64 / (1u64 << 53) as f64;
        let nanos = (cap / 2) + ((cap as f64 / 2.0) * frac) as u64;
        Duration::from_nanos(nanos.min(cap.saturating_sub(1).max(1)))
    }
}

/// Options for [`ClientApi::create`] — the typed form of the `CREATE`
/// option tokens. `None` fields take server defaults.
#[derive(Debug, Clone, Default)]
pub struct CreateOptions {
    /// Relative-error target (switches the tenant to `(ε, δ)` sizing).
    pub eps: Option<f64>,
    /// Failure probability (requires `eps`).
    pub delta: Option<f64>,
    /// Direct section size (ignored when `eps` is set).
    pub k: Option<u32>,
    /// Rank-accuracy orientation: `Some(true)` = HRA, `Some(false)` = LRA.
    pub hra: Option<bool>,
    /// `true` = adaptive schedule, `false` = standard.
    pub adaptive: Option<bool>,
    /// Ingest shard count.
    pub shards: Option<u32>,
    /// Explicit RNG seed.
    pub seed: Option<u64>,
}

impl CreateOptions {
    fn tokens(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(eps) = self.eps {
            out.push(format!("EPS={eps}"));
        }
        if let Some(delta) = self.delta {
            out.push(format!("DELTA={delta}"));
        }
        if let Some(k) = self.k {
            out.push(format!("K={k}"));
        }
        if let Some(hra) = self.hra {
            out.push(if hra { "HRA" } else { "LRA" }.to_string());
        }
        if let Some(adaptive) = self.adaptive {
            out.push(format!(
                "SCHEDULE={}",
                if adaptive { "adaptive" } else { "standard" }
            ));
        }
        if let Some(shards) = self.shards {
            out.push(format!("SHARDS={shards}"));
        }
        if let Some(seed) = self.seed {
            out.push(format!("SEED={seed}"));
        }
        out
    }

    /// Resolve into the [`TenantConfig`] the server would build.
    pub fn to_config(&self, key: &str) -> Result<TenantConfig, ReqError> {
        let tokens = self.tokens();
        let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
        TenantConfig::parse(key, &refs)
    }
}

fn unexpected(resp: &Response) -> ReqError {
    ReqError::Io(format!("unexpected response {resp:?}"))
}

/// The typed client surface, independent of transport and codec.
///
/// Implementors provide [`ClientApi::call`]; every command's typed
/// method rides on it. All methods are synchronous round-trips.
pub trait ClientApi {
    /// Send one typed request and return the server's typed response.
    /// A [`Response::Err`] is returned as-is (the typed methods below
    /// convert it into the matching [`ReqError`]); transport failures
    /// surface as [`ReqError::Io`].
    fn call(&mut self, req: &Request) -> Result<Response, ReqError>;

    /// `CREATE key` with options.
    fn create(&mut self, key: &str, opts: &CreateOptions) -> Result<(), ReqError> {
        let req = Request::Create {
            key: key.to_string(),
            config: opts.to_config(key)?,
            token: None,
        };
        match self.call(&req)?.into_result()? {
            Response::Created => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// `ADD key value`.
    fn add(&mut self, key: &str, value: f64) -> Result<(), ReqError> {
        let req = Request::Add {
            key: key.to_string(),
            value,
        };
        match self.call(&req)?.into_result()? {
            Response::Added => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// `ADDB key v…` — returns how many values the server ingested.
    fn add_batch(&mut self, key: &str, values: &[f64]) -> Result<u64, ReqError> {
        if values.is_empty() {
            return Ok(0);
        }
        let req = Request::AddBatch {
            key: key.to_string(),
            values: values.to_vec(),
            token: None,
        };
        match self.call(&req)?.into_result()? {
            Response::AddedBatch(n) => Ok(n),
            other => Err(unexpected(&other)),
        }
    }

    /// `RANK key value`.
    fn rank(&mut self, key: &str, value: f64) -> Result<u64, ReqError> {
        let req = Request::Rank {
            key: key.to_string(),
            value,
        };
        match self.call(&req)?.into_result()? {
            Response::Rank(r) => Ok(r),
            other => Err(unexpected(&other)),
        }
    }

    /// `QUANTILE key q`; `None` while the tenant is empty.
    fn quantile(&mut self, key: &str, q: f64) -> Result<Option<f64>, ReqError> {
        let req = Request::Quantile {
            key: key.to_string(),
            q,
        };
        match self.call(&req)?.into_result()? {
            Response::Quantile(v) => Ok(v),
            other => Err(unexpected(&other)),
        }
    }

    /// `CDF key p…`.
    fn cdf(&mut self, key: &str, points: &[f64]) -> Result<Vec<f64>, ReqError> {
        let req = Request::Cdf {
            key: key.to_string(),
            points: points.to_vec(),
        };
        match self.call(&req)?.into_result()? {
            Response::Cdf(ranks) => Ok(ranks),
            other => Err(unexpected(&other)),
        }
    }

    /// `STATS key`.
    fn stats(&mut self, key: &str) -> Result<TenantStats, ReqError> {
        let req = Request::Stats {
            key: key.to_string(),
        };
        match self.call(&req)?.into_result()? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// `LIST` — all keys, sorted.
    fn list(&mut self) -> Result<Vec<String>, ReqError> {
        match self.call(&Request::List)?.into_result()? {
            Response::List(keys) => Ok(keys),
            other => Err(unexpected(&other)),
        }
    }

    /// `SNAPSHOT` — force a snapshot, returning the new generation.
    fn snapshot(&mut self) -> Result<u64, ReqError> {
        match self.call(&Request::Snapshot)?.into_result()? {
            Response::Snapshot(generation) => Ok(generation),
            other => Err(unexpected(&other)),
        }
    }

    /// `DROP key`.
    fn drop_key(&mut self, key: &str) -> Result<(), ReqError> {
        let req = Request::Drop {
            key: key.to_string(),
            token: None,
        };
        match self.call(&req)?.into_result()? {
            Response::Dropped => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// `TAIL gen offset max_bytes` — fetch a replication slice of the
    /// server's WAL: whole valid frames of generation `gen` from byte
    /// `offset` (0 = first frame), plus the seal/latest-generation
    /// markers a follower needs to track rotations.
    fn tail_wal(
        &mut self,
        generation: u64,
        offset: u64,
        max_bytes: u32,
    ) -> Result<TailSegment, ReqError> {
        let req = Request::Tail {
            gen: generation,
            offset,
            max_bytes,
        };
        match self.call(&req)?.into_result()? {
            Response::Tailed(segment) => Ok(segment),
            other => Err(unexpected(&other)),
        }
    }

    /// `MERGE key` — the tenant's serialized per-shard sketches, for
    /// scatter/gather merging at a router via
    /// [`req_core::merge_wire_parts`].
    fn merge_parts(&mut self, key: &str) -> Result<Vec<Vec<u8>>, ReqError> {
        let req = Request::Merge {
            key: key.to_string(),
        };
        match self.call(&req)?.into_result()? {
            Response::Merged(parts) => Ok(parts),
            other => Err(unexpected(&other)),
        }
    }

    /// `METRICS` — the server's telemetry registry as Prometheus-style
    /// text exposition (multi-line).
    fn metrics(&mut self) -> Result<String, ReqError> {
        match self.call(&Request::Metrics)?.into_result()? {
            Response::MetricsText(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// `EVENTS max` — the newest `max` structured lifecycle events,
    /// oldest first, one rendered line per event.
    fn events(&mut self, max: u32) -> Result<Vec<String>, ReqError> {
        let req = Request::Events { max };
        match self.call(&req)?.into_result()? {
            Response::Events(lines) => Ok(lines),
            other => Err(unexpected(&other)),
        }
    }

    /// `PING`.
    fn ping(&mut self) -> Result<(), ReqError> {
        match self.call(&Request::Ping)?.into_result()? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// `QUIT` — ask the server to close this connection.
    fn quit(mut self) -> Result<(), ReqError>
    where
        Self: Sized,
    {
        match self.call(&Request::Quit)?.into_result()? {
            Response::Bye => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

/// Stamp an unstamped mutation with the next `(client_id, seq)` token.
/// `next_seq` is bumped only when a token is attached, so queries don't
/// burn window slots. Explicitly pre-stamped requests pass through.
pub fn attach_token(req: &mut Request, client_id: u64, next_seq: &mut u64) {
    let slot = match req {
        Request::Create { token, .. }
        | Request::AddBatch { token, .. }
        | Request::Drop { token, .. } => token,
        _ => return,
    };
    if slot.is_none() {
        *slot = Some(IdemToken {
            client_id,
            seq: *next_seq,
        });
        *next_seq += 1;
    }
}

/// May this request be re-sent after an ambiguous transport failure?
/// Queries always; mutations only when carrying an idempotency token.
pub fn is_retryable(req: &Request) -> bool {
    match req {
        Request::Create { token, .. }
        | Request::AddBatch { token, .. }
        | Request::Drop { token, .. } => token.is_some(),
        Request::Add { .. } => false,
        _ => true,
    }
}

/// A process-unique client id: pid mixed with a monotonic counter and a
/// clock sample, so concurrently spawned clients (or a restarted process
/// reusing a pid) get distinct dedup windows on the server.
pub fn fresh_client_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    mix(nanos)
        ^ mix(u64::from(std::process::id()).wrapping_shl(32))
        ^ mix(COUNTER.fetch_add(1, Ordering::Relaxed))
}

/// A connected text-protocol client (one line per message) with
/// reconnect-and-retry resilience (see the module docs).
#[derive(Debug)]
pub struct ReqClient {
    conn: Option<TextConn>,
    addr: SocketAddr,
    policy: RetryPolicy,
    client_id: u64,
    next_seq: u64,
}

#[derive(Debug)]
struct TextConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TextConn {
    fn dial(addr: &SocketAddr, policy: &RetryPolicy) -> Result<Self, ReqError> {
        let stream = TcpStream::connect_timeout(addr, policy.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(policy.read_timeout))?;
        stream.set_write_timeout(Some(policy.write_timeout))?;
        let writer = stream.try_clone()?;
        Ok(TextConn {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one raw line, return the raw response line (unparsed).
    fn send_line(&mut self, line: &str) -> Result<String, ReqError> {
        // One write per request (see server.rs on TCP_NODELAY packets).
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ReqError::Io("server closed the connection".into()));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

impl ReqClient {
    /// Connect to a running `req-server` with the default [`RetryPolicy`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ReqError> {
        Self::connect_with(addr, RetryPolicy::default())
    }

    /// Connect with an explicit policy.
    pub fn connect_with(addr: impl ToSocketAddrs, policy: RetryPolicy) -> Result<Self, ReqError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ReqError::InvalidParameter("address resolved to nothing".into()))?;
        let conn = TextConn::dial(&addr, &policy)?;
        Ok(ReqClient {
            conn: Some(conn),
            addr,
            policy,
            client_id: fresh_client_id(),
            next_seq: 1,
        })
    }

    /// The id stamped into this client's idempotency tokens.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn conn(&mut self) -> Result<&mut TextConn, ReqError> {
        if self.conn.is_none() {
            self.conn = Some(TextConn::dial(&self.addr, &self.policy)?);
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    /// Send one raw line, reconnecting first if the previous attempt
    /// dropped the connection. Transport failures poison the connection
    /// so the next call redials.
    fn send_line(&mut self, line: &str) -> Result<String, ReqError> {
        if line.contains('\n') || line.contains('\r') {
            return Err(ReqError::InvalidParameter(
                "request must be a single line".into(),
            ));
        }
        let result = self.conn()?.send_line(line);
        if result.is_err() {
            self.conn = None;
        }
        result
    }

    /// Send one raw request line and return the response payload string.
    #[deprecated(
        since = "0.1.0",
        note = "use `ClientApi::call` with a typed `Request` (this shim \
                survives one release for `req-cli` pass-through)"
    )]
    pub fn roundtrip(&mut self, line: &str) -> Result<String, ReqError> {
        let response = self.send_line(line)?;
        #[allow(deprecated)]
        crate::protocol::parse_response(&response)
    }
}

impl ClientApi for ReqClient {
    fn call(&mut self, req: &Request) -> Result<Response, ReqError> {
        let mut req = req.clone();
        attach_token(&mut req, self.client_id, &mut self.next_seq);
        let retryable = is_retryable(&req);
        let line = text::encode_request(&req);
        let mut attempt = 0u32;
        loop {
            let result = self
                .send_line(&line)
                .and_then(|resp| text::decode_response(&resp, req.kind()));
            let give_up = attempt >= self.policy.max_retries;
            match result {
                // `Busy` (shed) and `Unavailable` (read-only) replies had
                // no side effect — back off and retry even without a
                // token; read-only heals on the next snapshot rotation.
                Ok(Response::Err {
                    kind: crate::protocol::ErrorKind::Busy | crate::protocol::ErrorKind::Unavailable,
                    msg: _,
                }) if !give_up => {}
                // A server-side Io reply is ambiguous (the record may or
                // may not have reached the WAL) — only the token's dedup
                // window makes re-sending safe.
                Ok(Response::Err {
                    kind: crate::protocol::ErrorKind::Io,
                    msg: _,
                }) if retryable && !give_up => {}
                Ok(resp) => return Ok(resp),
                // Transport-level Io failures are equally ambiguous; the
                // token (or natural idempotence) makes the re-send safe.
                Err(ReqError::Io(_)) if retryable && !give_up => {}
                Err(e) => return Err(e),
            }
            std::thread::sleep(self.policy.backoff(attempt));
            attempt += 1;
        }
    }
}
