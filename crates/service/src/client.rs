//! Typed clients for the service's wire API.
//!
//! [`ClientApi`] is the transport-independent surface: one required
//! method ([`ClientApi::call`]) sends a typed [`Request`] and returns the
//! typed [`Response`]; every command gets a typed convenience method
//! (`rank()`, `quantile()`, `add_batch()`, …) as a default on the trait.
//! [`ReqClient`] implements it over the text codec (one line per
//! message); `req_evented::ReqBinClient` implements the same trait over
//! CRC32-framed binary messages — callers swap transports without
//! touching call sites.
//!
//! Remote failures come back as the same [`ReqError`] variants the server
//! raised (the error kind round-trips through [`Response::Err`]), so
//! callers handle local and remote errors uniformly.

use req_core::ReqError;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::config::TenantConfig;
use crate::protocol::{text, Request, Response};
use crate::service::TenantStats;

/// Options for [`ClientApi::create`] — the typed form of the `CREATE`
/// option tokens. `None` fields take server defaults.
#[derive(Debug, Clone, Default)]
pub struct CreateOptions {
    /// Relative-error target (switches the tenant to `(ε, δ)` sizing).
    pub eps: Option<f64>,
    /// Failure probability (requires `eps`).
    pub delta: Option<f64>,
    /// Direct section size (ignored when `eps` is set).
    pub k: Option<u32>,
    /// Rank-accuracy orientation: `Some(true)` = HRA, `Some(false)` = LRA.
    pub hra: Option<bool>,
    /// `true` = adaptive schedule, `false` = standard.
    pub adaptive: Option<bool>,
    /// Ingest shard count.
    pub shards: Option<u32>,
    /// Explicit RNG seed.
    pub seed: Option<u64>,
}

impl CreateOptions {
    fn tokens(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(eps) = self.eps {
            out.push(format!("EPS={eps}"));
        }
        if let Some(delta) = self.delta {
            out.push(format!("DELTA={delta}"));
        }
        if let Some(k) = self.k {
            out.push(format!("K={k}"));
        }
        if let Some(hra) = self.hra {
            out.push(if hra { "HRA" } else { "LRA" }.to_string());
        }
        if let Some(adaptive) = self.adaptive {
            out.push(format!(
                "SCHEDULE={}",
                if adaptive { "adaptive" } else { "standard" }
            ));
        }
        if let Some(shards) = self.shards {
            out.push(format!("SHARDS={shards}"));
        }
        if let Some(seed) = self.seed {
            out.push(format!("SEED={seed}"));
        }
        out
    }

    /// Resolve into the [`TenantConfig`] the server would build.
    pub fn to_config(&self, key: &str) -> Result<TenantConfig, ReqError> {
        let tokens = self.tokens();
        let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
        TenantConfig::parse(key, &refs)
    }
}

fn unexpected(resp: &Response) -> ReqError {
    ReqError::Io(format!("unexpected response {resp:?}"))
}

/// The typed client surface, independent of transport and codec.
///
/// Implementors provide [`ClientApi::call`]; every command's typed
/// method rides on it. All methods are synchronous round-trips.
pub trait ClientApi {
    /// Send one typed request and return the server's typed response.
    /// A [`Response::Err`] is returned as-is (the typed methods below
    /// convert it into the matching [`ReqError`]); transport failures
    /// surface as [`ReqError::Io`].
    fn call(&mut self, req: &Request) -> Result<Response, ReqError>;

    /// `CREATE key` with options.
    fn create(&mut self, key: &str, opts: &CreateOptions) -> Result<(), ReqError> {
        let req = Request::Create {
            key: key.to_string(),
            config: opts.to_config(key)?,
        };
        match self.call(&req)?.into_result()? {
            Response::Created => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// `ADD key value`.
    fn add(&mut self, key: &str, value: f64) -> Result<(), ReqError> {
        let req = Request::Add {
            key: key.to_string(),
            value,
        };
        match self.call(&req)?.into_result()? {
            Response::Added => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// `ADDB key v…` — returns how many values the server ingested.
    fn add_batch(&mut self, key: &str, values: &[f64]) -> Result<u64, ReqError> {
        if values.is_empty() {
            return Ok(0);
        }
        let req = Request::AddBatch {
            key: key.to_string(),
            values: values.to_vec(),
        };
        match self.call(&req)?.into_result()? {
            Response::AddedBatch(n) => Ok(n),
            other => Err(unexpected(&other)),
        }
    }

    /// `RANK key value`.
    fn rank(&mut self, key: &str, value: f64) -> Result<u64, ReqError> {
        let req = Request::Rank {
            key: key.to_string(),
            value,
        };
        match self.call(&req)?.into_result()? {
            Response::Rank(r) => Ok(r),
            other => Err(unexpected(&other)),
        }
    }

    /// `QUANTILE key q`; `None` while the tenant is empty.
    fn quantile(&mut self, key: &str, q: f64) -> Result<Option<f64>, ReqError> {
        let req = Request::Quantile {
            key: key.to_string(),
            q,
        };
        match self.call(&req)?.into_result()? {
            Response::Quantile(v) => Ok(v),
            other => Err(unexpected(&other)),
        }
    }

    /// `CDF key p…`.
    fn cdf(&mut self, key: &str, points: &[f64]) -> Result<Vec<f64>, ReqError> {
        let req = Request::Cdf {
            key: key.to_string(),
            points: points.to_vec(),
        };
        match self.call(&req)?.into_result()? {
            Response::Cdf(ranks) => Ok(ranks),
            other => Err(unexpected(&other)),
        }
    }

    /// `STATS key`.
    fn stats(&mut self, key: &str) -> Result<TenantStats, ReqError> {
        let req = Request::Stats {
            key: key.to_string(),
        };
        match self.call(&req)?.into_result()? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// `LIST` — all keys, sorted.
    fn list(&mut self) -> Result<Vec<String>, ReqError> {
        match self.call(&Request::List)?.into_result()? {
            Response::List(keys) => Ok(keys),
            other => Err(unexpected(&other)),
        }
    }

    /// `SNAPSHOT` — force a snapshot, returning the new generation.
    fn snapshot(&mut self) -> Result<u64, ReqError> {
        match self.call(&Request::Snapshot)?.into_result()? {
            Response::Snapshot(generation) => Ok(generation),
            other => Err(unexpected(&other)),
        }
    }

    /// `DROP key`.
    fn drop_key(&mut self, key: &str) -> Result<(), ReqError> {
        let req = Request::Drop {
            key: key.to_string(),
        };
        match self.call(&req)?.into_result()? {
            Response::Dropped => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// `PING`.
    fn ping(&mut self) -> Result<(), ReqError> {
        match self.call(&Request::Ping)?.into_result()? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// `QUIT` — ask the server to close this connection.
    fn quit(mut self) -> Result<(), ReqError>
    where
        Self: Sized,
    {
        match self.call(&Request::Quit)?.into_result()? {
            Response::Bye => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

/// A connected text-protocol client (one line per message).
#[derive(Debug)]
pub struct ReqClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ReqClient {
    /// Connect to a running `req-server`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ReqError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(300)))?;
        let writer = stream.try_clone()?;
        Ok(ReqClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one raw line, return the raw response line (unparsed).
    fn send_line(&mut self, line: &str) -> Result<String, ReqError> {
        if line.contains('\n') || line.contains('\r') {
            return Err(ReqError::InvalidParameter(
                "request must be a single line".into(),
            ));
        }
        // One write per request (see server.rs on TCP_NODELAY packets).
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ReqError::Io("server closed the connection".into()));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Send one raw request line and return the response payload string.
    #[deprecated(
        since = "0.1.0",
        note = "use `ClientApi::call` with a typed `Request` (this shim \
                survives one release for `req-cli` pass-through)"
    )]
    pub fn roundtrip(&mut self, line: &str) -> Result<String, ReqError> {
        let response = self.send_line(line)?;
        #[allow(deprecated)]
        crate::protocol::parse_response(&response)
    }
}

impl ClientApi for ReqClient {
    fn call(&mut self, req: &Request) -> Result<Response, ReqError> {
        let line = self.send_line(&text::encode_request(req))?;
        text::decode_response(&line, req.kind())
    }
}
