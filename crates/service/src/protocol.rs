//! The wire protocol: one line per request, one line per response.
//!
//! Text, not binary, on purpose: the service is debuggable with `nc`, and
//! Rust's `f64` Display/FromStr round-trip exactly (shortest-repr
//! printing), so no precision is lost crossing the wire.
//!
//! ```text
//! CREATE key [EPS=f] [DELTA=f] [K=n] [HRA|LRA] [SCHEDULE=s] [SHARDS=n] [SEED=n]
//! ADD key value
//! ADDB key v1 v2 v3 ...
//! RANK key value
//! QUANTILE key q
//! CDF key p1 p2 ...
//! STATS key
//! LIST
//! SNAPSHOT
//! DROP key
//! PING
//! QUIT
//! ```
//!
//! Responses are `OK[ payload]` or `ERR <kind> <message>`, where `kind`
//! is one of `invalid`, `incompatible`, `corrupt`, `io` — the client maps
//! it back onto the matching [`ReqError`] variant, so a remote failure is
//! indistinguishable (by type) from a local one.

use req_core::ReqError;

use crate::config::TenantConfig;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `CREATE key [options…]`
    Create {
        /// Tenant key.
        key: String,
        /// Resolved tenant configuration.
        config: TenantConfig,
    },
    /// `ADD key value`
    Add {
        /// Tenant key.
        key: String,
        /// Value to ingest.
        value: f64,
    },
    /// `ADDB key v1 v2 …`
    AddBatch {
        /// Tenant key.
        key: String,
        /// Values to ingest, in order.
        values: Vec<f64>,
    },
    /// `RANK key value`
    Rank {
        /// Tenant key.
        key: String,
        /// Query point.
        value: f64,
    },
    /// `QUANTILE key q`
    Quantile {
        /// Tenant key.
        key: String,
        /// Normalized rank in `[0, 1]`.
        q: f64,
    },
    /// `CDF key p1 p2 …`
    Cdf {
        /// Tenant key.
        key: String,
        /// Ascending split points.
        points: Vec<f64>,
    },
    /// `STATS key`
    Stats {
        /// Tenant key.
        key: String,
    },
    /// `LIST`
    List,
    /// `SNAPSHOT`
    Snapshot,
    /// `DROP key`
    Drop {
        /// Tenant key.
        key: String,
    },
    /// `PING`
    Ping,
    /// `QUIT`
    Quit,
}

fn parse_f64(token: &str) -> Result<f64, ReqError> {
    token
        .parse()
        .map_err(|_| ReqError::InvalidParameter(format!("bad number `{token}`")))
}

fn parse_f64s(tokens: &[&str]) -> Result<Vec<f64>, ReqError> {
    tokens.iter().map(|t| parse_f64(t)).collect()
}

impl Command {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Command, ReqError> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let bad = |msg: String| Err(ReqError::InvalidParameter(msg));
        let Some(&verb) = tokens.first() else {
            return bad("empty command".into());
        };
        let args = &tokens[1..];
        let need_key = || -> Result<String, ReqError> {
            args.first()
                .map(|k| k.to_string())
                .ok_or_else(|| ReqError::InvalidParameter(format!("{verb} needs a key")))
        };
        match verb.to_ascii_uppercase().as_str() {
            "CREATE" => {
                let key = need_key()?;
                let config = TenantConfig::parse(&key, &args[1..])?;
                Ok(Command::Create { key, config })
            }
            "ADD" | "RANK" | "QUANTILE" => {
                let key = need_key()?;
                if args.len() != 2 {
                    return bad(format!("{verb} needs exactly `key value`"));
                }
                let value = parse_f64(args[1])?;
                Ok(match verb.to_ascii_uppercase().as_str() {
                    "ADD" => Command::Add { key, value },
                    "RANK" => Command::Rank { key, value },
                    _ => Command::Quantile { key, q: value },
                })
            }
            "ADDB" => {
                let key = need_key()?;
                if args.len() < 2 {
                    return bad("ADDB needs at least one value".into());
                }
                Ok(Command::AddBatch {
                    key,
                    values: parse_f64s(&args[1..])?,
                })
            }
            "CDF" => {
                let key = need_key()?;
                if args.len() < 2 {
                    return bad("CDF needs at least one split point".into());
                }
                Ok(Command::Cdf {
                    key,
                    points: parse_f64s(&args[1..])?,
                })
            }
            "STATS" => Ok(Command::Stats { key: need_key()? }),
            "DROP" => Ok(Command::Drop { key: need_key()? }),
            "LIST" => Ok(Command::List),
            "SNAPSHOT" => Ok(Command::Snapshot),
            "PING" => Ok(Command::Ping),
            "QUIT" => Ok(Command::Quit),
            other => bad(format!("unknown command `{other}`")),
        }
    }
}

/// Render a handler result as one response line.
pub fn format_response(result: &Result<String, ReqError>) -> String {
    match result {
        Ok(payload) if payload.is_empty() => "OK".to_string(),
        Ok(payload) => format!("OK {payload}"),
        Err(e) => {
            let (kind, msg) = match e {
                ReqError::InvalidParameter(m) => ("invalid", m),
                ReqError::IncompatibleMerge(m) => ("incompatible", m),
                ReqError::CorruptBytes(m) => ("corrupt", m),
                ReqError::Io(m) => ("io", m),
            };
            // Responses are line-framed; a message must not smuggle one.
            format!("ERR {kind} {}", msg.replace(['\r', '\n'], " "))
        }
    }
}

/// Parse a response line back into the handler result (client side).
pub fn parse_response(line: &str) -> Result<String, ReqError> {
    if let Some(payload) = line.strip_prefix("OK") {
        return Ok(payload.strip_prefix(' ').unwrap_or(payload).to_string());
    }
    if let Some(rest) = line.strip_prefix("ERR ") {
        let (kind, msg) = rest.split_once(' ').unwrap_or((rest, ""));
        let msg = msg.to_string();
        return Err(match kind {
            "invalid" => ReqError::InvalidParameter(msg),
            "incompatible" => ReqError::IncompatibleMerge(msg),
            "corrupt" => ReqError::CorruptBytes(msg),
            "io" => ReqError::Io(msg),
            _ => ReqError::Io(format!("unparseable error response: {line}")),
        });
    }
    Err(ReqError::Io(format!("unparseable response: {line}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Accuracy;

    #[test]
    fn commands_parse() {
        assert_eq!(
            Command::parse("ADD lat 3.25").unwrap(),
            Command::Add {
                key: "lat".into(),
                value: 3.25
            }
        );
        assert_eq!(
            Command::parse("addb k 1 2.5 -3e4").unwrap(),
            Command::AddBatch {
                key: "k".into(),
                values: vec![1.0, 2.5, -3e4]
            }
        );
        assert_eq!(
            Command::parse("QUANTILE k 0.99").unwrap(),
            Command::Quantile {
                key: "k".into(),
                q: 0.99
            }
        );
        assert_eq!(
            Command::parse("CDF k 1 2 3").unwrap(),
            Command::Cdf {
                key: "k".into(),
                points: vec![1.0, 2.0, 3.0]
            }
        );
        let Command::Create { key, config } =
            Command::parse("CREATE api.p99 EPS=0.02 LRA SHARDS=2").unwrap()
        else {
            panic!("expected CREATE");
        };
        assert_eq!(key, "api.p99");
        assert_eq!(config.accuracy, Accuracy::EpsDelta(0.02, 0.05));
        assert!(!config.hra);
        assert_eq!(config.shards, 2);
        assert_eq!(Command::parse("LIST").unwrap(), Command::List);
        assert_eq!(Command::parse("ping").unwrap(), Command::Ping);
        assert_eq!(Command::parse("QUIT").unwrap(), Command::Quit);
        assert_eq!(Command::parse("SNAPSHOT").unwrap(), Command::Snapshot);
        assert_eq!(
            Command::parse("DROP k").unwrap(),
            Command::Drop { key: "k".into() }
        );
    }

    #[test]
    fn bad_commands_reject() {
        for line in [
            "",
            "   ",
            "NOPE",
            "ADD",
            "ADD key",
            "ADD key x",
            "ADD key 1 2",
            "ADDB key",
            "CDF key",
            "RANK key one",
            "CREATE",
            "CREATE key BOGUS=1",
        ] {
            assert!(Command::parse(line).is_err(), "`{line}` accepted");
        }
    }

    #[test]
    fn responses_roundtrip() {
        for result in [
            Ok(String::new()),
            Ok("42".to_string()),
            Ok("1 2 3".to_string()),
            Err(ReqError::InvalidParameter("no such key `x`".into())),
            Err(ReqError::IncompatibleMerge("different k".into())),
            Err(ReqError::CorruptBytes("checksum".into())),
            Err(ReqError::Io("broken pipe".into())),
        ] {
            let line = format_response(&result);
            assert!(!line.contains('\n'));
            let back = parse_response(&line);
            assert_eq!(back, result, "through `{line}`");
        }
    }

    #[test]
    fn newlines_in_error_messages_are_flattened() {
        let e = Err(ReqError::Io("two\nlines".into()));
        let line = format_response(&e);
        assert!(!line.contains('\n'));
        assert!(matches!(parse_response(&line), Err(ReqError::Io(m)) if m == "two lines"));
    }

    #[test]
    fn f64_display_roundtrips_exactly() {
        // The protocol's losslessness rests on this std guarantee.
        for v in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0, 1e-300] {
            let s = format!("{v}");
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via `{s}`");
        }
    }
}
