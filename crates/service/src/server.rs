//! TCP front-end: a small pool of accept-and-serve threads.
//!
//! No async runtime — the vendor tree is offline and a quantile query is
//! microseconds of CPU, so a handful of blocking threads each owning one
//! connection at a time serves heavy traffic fine (connections are meant
//! to be pooled/reused by clients; every request is one line, every
//! response one line). All workers call `accept` on clones of the same
//! listener; the kernel load-balances.
//!
//! Shutdown: a flag flips, then one wake-up connection per worker unblocks
//! its `accept`, then the threads are joined. In-flight connections finish
//! their current request and close.

use parking_lot::Mutex;
use req_core::ReqError;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::protocol::{text, Request, Response};
use crate::service::QuantileService;

/// Longest accepted request line (an `ADDB` of ~400k values). Longer
/// lines get an error and the connection closes.
pub const MAX_LINE_BYTES: u64 = 8 * 1024 * 1024;

/// Live-connection table: lets shutdown unblock workers that are mid-read
/// on an idle client instead of waiting out the read timeout.
#[derive(Debug, Default)]
struct ConnTable {
    conns: Mutex<HashMap<u64, TcpStream>>,
    next: AtomicU64,
}

impl ConnTable {
    fn register(&self, stream: &TcpStream) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.conns.lock().insert(id, clone);
        }
        id
    }

    fn deregister(&self, id: u64) {
        self.conns.lock().remove(&id);
    }

    fn shutdown_all(&self) {
        for conn in self.conns.lock().values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// Handle to a running server; stops and joins the workers on drop.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<ConnTable>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the workers, and join them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock workers parked on an idle connection's read...
        self.conns.shutdown_all();
        // ...and workers parked in accept.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
/// `service` on `threads` workers.
pub fn serve(
    service: Arc<QuantileService>,
    addr: &str,
    threads: usize,
) -> Result<ServerHandle, ReqError> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns = Arc::new(ConnTable::default());
    let threads = threads.clamp(1, 64);
    let workers = (0..threads)
        .map(|_| -> Result<_, ReqError> {
            let listener = listener.try_clone()?;
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            Ok(std::thread::spawn(move || {
                worker_loop(listener, service, stop, conns)
            }))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ServerHandle {
        addr: local,
        stop,
        conns,
        workers,
    })
}

fn worker_loop(
    listener: TcpListener,
    service: Arc<QuantileService>,
    stop: Arc<AtomicBool>,
    conns: Arc<ConnTable>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                // A persistent accept failure (e.g. fd exhaustion) must
                // not become a busy spin — and must not outlive shutdown,
                // whose wake-up connect may itself be failing.
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // One-line responses must leave immediately (Nagle + delayed ACK
        // turns each round-trip into ~40ms otherwise), and a hung client
        // must not pin a worker forever.
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(300)));
        let id = conns.register(&stream);
        // Close the shutdown race: if stop was set between the check above
        // and our registration, shutdown_all() may already have swept an
        // empty table — registration goes through the same lock, so by the
        // time we got the slot the flag is visible; shut our own stream so
        // the read below returns immediately instead of holding join()
        // until the read timeout.
        if stop.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let _ = handle_connection(stream, &service);
        conns.deregister(id);
        if stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn handle_connection(stream: TcpStream, service: &QuantileService) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Bound the read so one hostile line cannot exhaust memory.
        let n = (&mut reader).take(MAX_LINE_BYTES).read_line(&mut line)?;
        if n == 0 {
            return Ok(()); // clean EOF
        }
        if n as u64 == MAX_LINE_BYTES && !line.ends_with('\n') {
            let resp = Response::from_error(&ReqError::InvalidParameter(format!(
                "request line exceeds {MAX_LINE_BYTES} bytes"
            )));
            let mut response = text::encode_response(&resp);
            response.push('\n');
            writer.write_all(response.as_bytes())?;
            return Ok(());
        }
        if line.trim().is_empty() {
            continue;
        }
        let resp;
        let mut quit = false;
        match text::decode_request(&line) {
            Ok(req) => {
                quit = matches!(req, Request::Quit);
                resp = execute(service, req);
            }
            Err(e) => resp = Response::from_error(&e),
        }
        // One write per response: with TCP_NODELAY a separate newline
        // write would flush as its own packet on every round-trip.
        let mut response = text::encode_response(&resp);
        response.push('\n');
        writer.write_all(response.as_bytes())?;
        writer.flush()?;
        if quit {
            return Ok(());
        }
    }
}

/// Execute one typed request against the service. Handler failures come
/// back as [`Response::Err`]; both front-ends (this text server and the
/// evented binary server) funnel through here, which is what makes the
/// codecs provably equivalent — same request, same typed response.
pub fn execute(service: &QuantileService, req: Request) -> Response {
    let result = (|| -> Result<Response, ReqError> {
        Ok(match req {
            Request::Create { key, config, token } => {
                service.create_with_token(&key, config, token)?;
                Response::Created
            }
            Request::Add { key, value } => {
                service.add(&key, value)?;
                Response::Added
            }
            Request::AddBatch { key, values, token } => {
                let values: Vec<req_core::OrdF64> =
                    values.into_iter().map(req_core::OrdF64).collect();
                Response::AddedBatch(service.add_batch_with_token(&key, &values, token)?)
            }
            Request::Rank { key, value } => Response::Rank(service.rank(&key, value)?),
            Request::Quantile { key, q } => Response::Quantile(service.quantile(&key, q)?),
            Request::Cdf { key, points } => Response::Cdf(service.cdf(&key, &points)?),
            Request::Stats { key } => Response::Stats(service.stats(&key)?),
            Request::List => Response::List(service.list()),
            Request::Snapshot => Response::Snapshot(service.snapshot_now()?),
            Request::Drop { key, token } => {
                service.drop_key_with_token(&key, token)?;
                Response::Dropped
            }
            Request::Ping => Response::Pong,
            Request::Quit => Response::Bye,
            Request::Tail {
                gen,
                offset,
                max_bytes,
            } => Response::Tailed(service.tail(gen, offset, max_bytes)?),
            Request::Merge { key } => Response::Merged(service.sketch_parts(&key)?),
            Request::Metrics => Response::MetricsText(req_telemetry::global().render()),
            Request::Events { max } => {
                Response::Events(req_telemetry::global().recent_events(max as usize))
            }
        })
    })();
    match result {
        Ok(resp) => resp,
        Err(e) => Response::from_error(&e),
    }
}

/// Execute one command, rendering the reply as the old string payload.
#[deprecated(
    since = "0.1.0",
    note = "use `execute` for a typed `Response` instead of a payload string"
)]
#[allow(deprecated)]
pub fn dispatch(
    service: &QuantileService,
    cmd: crate::protocol::Command,
) -> Result<String, ReqError> {
    let resp = execute(service, cmd).into_result()?;
    let line = text::encode_response(&resp);
    let payload = line.strip_prefix("OK").unwrap_or(&line);
    Ok(payload.strip_prefix(' ').unwrap_or(payload).to_string())
}
