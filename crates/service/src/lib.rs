//! # `req-service` — a durable, multi-tenant quantile service
//!
//! The serving layer over [`req_core`]: a process that **owns** named REQ
//! sketches, **survives restarts**, and **answers queries over TCP**. It
//! is built from three layers, each usable on its own:
//!
//! * **[`registry`]** — a keyed map of tenants (`HashMap<String,
//!   ConcurrentReqSketch<OrdF64>>` behind sharded locks), each with its
//!   own accuracy/orientation/schedule configuration ([`config`]);
//! * **[`wal`] + [`snapshot`]** — durability: every mutation is appended
//!   to a checksummed write-ahead log before it is applied, and a
//!   snapshot store (binary format v3 inside [`req_core::frame`] frames)
//!   periodically folds the log down, rotating it. Crash recovery = load
//!   the latest valid snapshot, replay the WAL tail ([`service`]);
//! * **[`server`] + [`client`] + [`protocol`]** — the wire API as typed
//!   [`Request`]/[`Response`] enums with two codecs (one-line text,
//!   CRC32-framed binary), a `std::net` TCP server (thread-per-connection
//!   over a small pool) speaking the text codec, and the typed client the
//!   `req-cli` binary uses. The `req-evented` crate serves the binary
//!   codec from an event loop on these same cores.
//!
//! The recovery guarantee is deliberately stronger than "within the
//! sketch's ε": because snapshots checkpoint each tenant *onto its own
//! serialization* ([`req_core::ConcurrentReqSketch::checkpoint`]) and the
//! WAL preserves exact `f64` bit patterns in arrival order, a crashed and
//! recovered service returns **value-identical** answers to one that
//! never crashed (experiment E16 in the harness, plus this crate's
//! `recovery` proptests, verify it end to end).
//!
//! ```no_run
//! use req_service::{QuantileService, ServiceConfig, TenantConfig};
//!
//! let service = QuantileService::open(ServiceConfig::new("/var/lib/req"))?;
//! service.create("api.latency", TenantConfig::for_key("api.latency"))?;
//! service.add("api.latency", 12.5)?;
//! let p99 = service.quantile("api.latency", 0.99)?;
//! # let _ = p99;
//! # Ok::<(), req_core::ReqError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod faults;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod tempdir;
pub mod wal;

pub use client::{ClientApi, CreateOptions, ReqClient, RetryPolicy};
pub use config::{stable_key_hash, Accuracy, ServiceConfig, TenantConfig};
pub use faults::{FaultKind, FaultPlane, FaultSite};
#[allow(deprecated)]
pub use protocol::Command;
pub use protocol::{ErrorKind, IdemToken, Request, RequestKind, Response, TailSegment};
pub use registry::{Registry, Tenant};
pub use server::{execute, serve, ServerHandle};
pub use service::{QuantileService, RecoveryReport, Snapshotter, TenantStats};
pub use snapshot::{AppliedOutcome, DedupClientSnapshot, SnapshotData, TenantSnapshot};
pub use wal::{WalRecord, WalReplay, WalWriter};
