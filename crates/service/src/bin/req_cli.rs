//! `req-cli` — talk to a running `req-server`.
//!
//! ```text
//! req-cli [--addr HOST:PORT] CMD [ARGS...]   one command, print the reply
//! req-cli [--addr HOST:PORT] repl            interactive: one command per line
//! ```
//!
//! Examples:
//!
//! ```text
//! req-cli CREATE api.latency K=32 HRA
//! req-cli ADDB api.latency 12.5 100.25 7.5
//! req-cli QUANTILE api.latency 0.99
//! req-cli STATS api.latency
//! ```

// The CLI is a raw-line pass-through by design; it stays on the
// deprecated string round-trip until the text shim is removed.
#![allow(deprecated)]

use req_service::ReqClient;
use std::io::BufRead;

fn usage() -> ! {
    eprintln!(
        "usage: req-cli [--addr HOST:PORT] CMD [ARGS...]\n\
         \x20      req-cli [--addr HOST:PORT] repl\n\
         commands: CREATE ADD ADDB RANK QUANTILE CDF STATS LIST SNAPSHOT DROP PING"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    if args.first().map(String::as_str) == Some("--addr") {
        if args.len() < 2 {
            usage();
        }
        addr = args[1].clone();
        args.drain(..2);
    }
    if args.is_empty() {
        usage();
    }

    let mut client = match ReqClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("req-cli: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    if args.len() == 1 && args[0] == "repl" {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            match client.roundtrip(line.trim()) {
                Ok(payload) if payload.is_empty() => println!("OK"),
                Ok(payload) => println!("{payload}"),
                Err(e) => eprintln!("error: {e}"),
            }
        }
        return;
    }

    let line = args.join(" ");
    match client.roundtrip(&line) {
        Ok(payload) if payload.is_empty() => println!("OK"),
        Ok(payload) => println!("{payload}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
