//! `req-cli` — talk to a running `req-server`.
//!
//! ```text
//! req-cli [OPTIONS] CMD [ARGS...]   one command, print the reply
//! req-cli [OPTIONS] repl            interactive: one command per line
//!
//! options:
//!   --addr HOST:PORT        server address      (default 127.0.0.1:7878)
//!   --connect-timeout SECS  dial timeout        (default 5)
//!   --timeout SECS          read/write timeout  (default 30)
//!   --retries N             max automatic retries of a failed command
//!                           (default 4; mutations retry only with their
//!                           idempotency token attached)
//! ```
//!
//! Examples:
//!
//! ```text
//! req-cli CREATE api.latency K=32 HRA
//! req-cli ADDB api.latency 12.5 100.25 7.5
//! req-cli QUANTILE api.latency 0.99
//! req-cli STATS api.latency
//! ```

// The CLI is a raw-line pass-through by design; it stays on the
// deprecated string round-trip until the text shim is removed.
#![allow(deprecated)]

use req_service::{ClientApi, ReqClient, RetryPolicy};
use std::io::BufRead;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: req-cli [--addr HOST:PORT] [--connect-timeout SECS] [--timeout SECS]\n\
         \x20              [--retries N] CMD [ARGS...]\n\
         \x20      req-cli [same options] repl\n\
         \x20      req-cli [same options] metrics\n\
         \x20      req-cli [same options] events [N]\n\
         commands: CREATE ADD ADDB RANK QUANTILE CDF STATS LIST SNAPSHOT DROP PING\n\
         \x20         METRICS EVENTS"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut policy = RetryPolicy::default();
    while let Some(flag) = args.first().filter(|a| a.starts_with("--")) {
        if args.len() < 2 {
            usage();
        }
        let value = args[1].clone();
        let secs = |v: &str| -> Duration {
            Duration::from_secs_f64(v.parse().unwrap_or_else(|_| usage()))
        };
        match flag.as_str() {
            "--addr" => addr = value,
            "--connect-timeout" => policy.connect_timeout = secs(&value),
            "--timeout" => {
                policy.read_timeout = secs(&value);
                policy.write_timeout = secs(&value);
            }
            "--retries" => policy.max_retries = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        args.drain(..2);
    }
    if args.is_empty() {
        usage();
    }

    let mut client = match ReqClient::connect_with(&addr, policy) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("req-cli: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };

    // Telemetry verbs get typed handling: their payloads are hex-armored
    // multi-line blobs on the text wire, so the raw pass-through below
    // would print unreadable hex. Decode and print the real thing.
    if args[0].eq_ignore_ascii_case("metrics") && args.len() == 1 {
        match client.metrics() {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args[0].eq_ignore_ascii_case("events") && args.len() <= 2 {
        let max: u32 = args
            .get(1)
            .map(|v| v.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(64);
        match client.events(max) {
            Ok(lines) => {
                for line in lines {
                    println!("{line}");
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.len() == 1 && args[0] == "repl" {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            match client.roundtrip(line.trim()) {
                Ok(payload) if payload.is_empty() => println!("OK"),
                Ok(payload) => println!("{payload}"),
                Err(e) => eprintln!("error: {e}"),
            }
        }
        return;
    }

    let line = args.join(" ");
    match client.roundtrip(&line) {
        Ok(payload) if payload.is_empty() => println!("OK"),
        Ok(payload) => println!("{payload}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
