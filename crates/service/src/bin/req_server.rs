//! `req-server` — run the durable quantile service over TCP.
//!
//! ```text
//! req-server --data-dir DIR [--addr 127.0.0.1:7878] [--threads 4]
//!            [--snapshot-interval-secs 30] [--snapshot-every-records N]
//!            [--fsync] [--max-inflight N] [--dedup-window N]
//!            [--no-telemetry]
//! ```
//!
//! `--max-inflight` bounds concurrently queued mutations (excess sheds
//! with `BUSY`; 0 = unbounded); `--dedup-window` sets how many recent
//! per-client idempotency tokens the service remembers for exactly-once
//! retries (default 64); `--no-telemetry` turns off metric and event
//! recording (`METRICS`/`EVENTS` still answer, with frozen values).

use req_service::{serve, QuantileService, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: req-server --data-dir DIR [--addr HOST:PORT] [--threads N]\n\
         \x20                 [--snapshot-interval-secs N] [--snapshot-every-records N] [--fsync]\n\
         \x20                 [--max-inflight N] [--dedup-window N] [--no-telemetry]"
    );
    std::process::exit(2);
}

fn parse_args() -> (ServiceConfig, String, usize, u64) {
    let mut data_dir: Option<String> = None;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut threads = 4usize;
    let mut interval_secs = 30u64;
    let mut every_records = 0u64;
    let mut fsync = false;
    let mut max_inflight = 0u64;
    let mut dedup_window: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--data-dir" => data_dir = Some(value(&mut i)),
            "--addr" => addr = value(&mut i),
            "--threads" => threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--snapshot-interval-secs" => {
                interval_secs = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--snapshot-every-records" => {
                every_records = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--fsync" => fsync = true,
            "--no-telemetry" => req_telemetry::global().set_enabled(false),
            "--max-inflight" => max_inflight = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--dedup-window" => {
                dedup_window = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    let Some(data_dir) = data_dir else { usage() };
    let mut cfg = ServiceConfig::new(data_dir);
    cfg.snapshot_every_records = every_records;
    cfg.fsync = fsync;
    cfg.max_inflight_mutations = max_inflight;
    if let Some(window) = dedup_window {
        cfg.dedup_window = window;
    }
    (cfg, addr, threads, interval_secs)
}

fn main() {
    let (cfg, addr, threads, interval_secs) = parse_args();
    let data_dir = cfg.data_dir.clone();
    let service = match QuantileService::open(cfg) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("req-server: cannot open {}: {e}", data_dir.display());
            std::process::exit(1);
        }
    };
    let report = service.recovery_report();
    eprintln!(
        "req-server: recovered data dir {} (snapshot gen {:?}, {} WAL records replayed, {} damaged bytes discarded)",
        data_dir.display(),
        report.snapshot_gen,
        report.records_replayed,
        report.damaged_bytes,
    );

    let _snapshotter =
        (interval_secs > 0).then(|| service.spawn_snapshotter(Duration::from_secs(interval_secs)));

    match serve(Arc::clone(&service), &addr, threads) {
        Ok(handle) => {
            println!("req-server: listening on {}", handle.addr());
            // Serve until killed; durability is the whole point — state is
            // recovered on the next start.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("req-server: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    }
}
