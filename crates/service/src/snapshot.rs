//! Snapshot store: full registry images built on binary format v3.
//!
//! A snapshot file freezes every tenant — configuration, round-robin
//! rotation, and each ingest shard's exact [`req_core::binary`] payload —
//! at one WAL rotation point. Layout:
//!
//! ```text
//! "REQSNAP1" | frame(header: gen u64 | tenant_count u32)
//!            | frame(tenant 0) | frame(tenant 1) | ...
//! ```
//!
//! Each tenant frame carries `key | config | rotation u64 | shard_count
//! u32 | (len u32 | sketch bytes)*`. Frames (see [`req_core::frame`]) make
//! a half-written or bit-rotted snapshot *detectably* invalid: the loader
//! verifies every checksum and [`latest_valid`] falls back to the newest
//! snapshot that loads in full.
//!
//! Writes go through a `*.tmp` + atomic-rename dance, so a crash mid-write
//! never shadows the previous good snapshot.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use req_core::binary::Packable;
use req_core::frame::{read_frame, write_frame};
use req_core::ReqError;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::config::TenantConfig;

/// Snapshot file magic.
pub const SNAP_MAGIC: &[u8; 8] = b"REQSNAP1";

/// One tenant frozen at the snapshot's rotation point.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Tenant key.
    pub key: String,
    /// Configuration (carries the seed — recovery rebuilds identically).
    pub config: TenantConfig,
    /// The sharded sketch's round-robin counter at checkpoint time.
    pub rotation: u64,
    /// Per-shard [`req_core::ReqSketch::to_bytes`] payloads.
    pub shards: Vec<Vec<u8>>,
}

/// A fully-loaded snapshot file.
#[derive(Debug)]
pub struct SnapshotData {
    /// WAL generation this snapshot begins (replay `wal-<gen>.log` on top).
    pub gen: u64,
    /// Tenants in key order.
    pub tenants: Vec<TenantSnapshot>,
}

/// `snap-<gen>.snap` path under `dir`.
pub fn snapshot_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snap-{gen:010}.snap"))
}

/// `wal-<gen>.log` path under `dir`.
pub fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:010}.log"))
}

/// Parse `<stem>-<gen 10 digits>.<ext>` names back into generations.
fn parse_gen(name: &str, stem: &str, ext: &str) -> Option<u64> {
    let rest = name.strip_prefix(stem)?.strip_prefix('-')?;
    let digits = rest.strip_suffix(ext)?.strip_suffix('.')?;
    if digits.len() != 10 {
        return None;
    }
    digits.parse().ok()
}

/// Generations of every `snap-*.snap` (ascending).
pub fn snapshot_gens(dir: &Path) -> Result<Vec<u64>, ReqError> {
    list_gens(dir, "snap", "snap")
}

/// Generations of every `wal-*.log` (ascending).
pub fn wal_gens(dir: &Path) -> Result<Vec<u64>, ReqError> {
    list_gens(dir, "wal", "log")
}

fn list_gens(dir: &Path, stem: &str, ext: &str) -> Result<Vec<u64>, ReqError> {
    let mut gens = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(gen) = parse_gen(name, stem, ext) {
                gens.push(gen);
            }
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

fn encode_tenant(t: &TenantSnapshot) -> Bytes {
    let mut out = BytesMut::new();
    t.key.pack(&mut out);
    t.config.encode(&mut out);
    out.put_u64_le(t.rotation);
    out.put_u32_le(t.shards.len() as u32);
    for shard in &t.shards {
        out.put_u32_le(shard.len() as u32);
        out.put_slice(shard);
    }
    out.freeze()
}

fn decode_tenant(payload: &[u8]) -> Result<TenantSnapshot, ReqError> {
    let mut input = Bytes::copy_from_slice(payload);
    let key = String::unpack(&mut input)?;
    let config = TenantConfig::decode(&mut input)?;
    let rotation = u64::unpack(&mut input)?;
    let shard_count = u32::unpack(&mut input)? as usize;
    if shard_count == 0 || shard_count > 256 {
        return Err(ReqError::CorruptBytes(format!(
            "snapshot tenant `{key}` claims {shard_count} shards"
        )));
    }
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let len = u32::unpack(&mut input)? as usize;
        if len > input.remaining() {
            return Err(ReqError::CorruptBytes(format!(
                "snapshot tenant `{key}` shard claims {len} bytes, {} remain",
                input.remaining()
            )));
        }
        shards.push(input.copy_to_bytes(len).to_vec());
    }
    if input.has_remaining() {
        return Err(ReqError::CorruptBytes(format!(
            "{} trailing bytes in snapshot tenant `{key}`",
            input.remaining()
        )));
    }
    Ok(TenantSnapshot {
        key,
        config,
        rotation,
        shards,
    })
}

/// Write `snap-<gen>.snap` atomically (tmp + rename). With `fsync`, the
/// file is synced before the rename so the name never points at data the
/// OS hasn't persisted.
pub fn write_snapshot(
    dir: &Path,
    gen: u64,
    tenants: &[TenantSnapshot],
    fsync: bool,
) -> Result<PathBuf, ReqError> {
    let mut out = BytesMut::new();
    out.put_slice(SNAP_MAGIC);
    let mut header = BytesMut::new();
    header.put_u64_le(gen);
    header.put_u32_le(tenants.len() as u32);
    write_frame(&mut out, &header);
    for t in tenants {
        write_frame(&mut out, &encode_tenant(t));
    }

    let final_path = snapshot_path(dir, gen);
    let tmp_path = final_path.with_extension("snap.tmp");
    {
        let mut f = File::create(&tmp_path)?;
        f.write_all(&out)?;
        f.flush()?;
        if fsync {
            f.sync_data()?;
        }
    }
    std::fs::rename(&tmp_path, &final_path)?;
    Ok(final_path)
}

/// Load and fully validate one snapshot file.
pub fn load_snapshot(path: &Path) -> Result<SnapshotData, ReqError> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() < SNAP_MAGIC.len() || &raw[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(ReqError::CorruptBytes("bad snapshot magic".into()));
    }
    let mut input = Bytes::from(raw);
    input.advance(SNAP_MAGIC.len());
    let mut header = read_frame(&mut input)?;
    let gen = u64::unpack(&mut header)?;
    let count = u32::unpack(&mut header)? as usize;
    if header.has_remaining() {
        return Err(ReqError::CorruptBytes("oversized snapshot header".into()));
    }
    let mut tenants = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let payload = read_frame(&mut input)?;
        tenants.push(decode_tenant(&payload)?);
    }
    if input.has_remaining() {
        return Err(ReqError::CorruptBytes(format!(
            "{} trailing bytes after snapshot tenants",
            input.remaining()
        )));
    }
    Ok(SnapshotData { gen, tenants })
}

/// The newest snapshot that loads in full, if any. Invalid candidates are
/// skipped (reported in the result), never deleted here.
pub fn latest_valid(dir: &Path) -> Result<(Option<SnapshotData>, Vec<u64>), ReqError> {
    let mut skipped = Vec::new();
    for gen in snapshot_gens(dir)?.into_iter().rev() {
        match load_snapshot(&snapshot_path(dir, gen)) {
            Ok(data) => return Ok((Some(data), skipped)),
            Err(_) => skipped.push(gen),
        }
    }
    Ok((None, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use req_core::ConcurrentReqSketch;

    fn sample_tenants() -> Vec<TenantSnapshot> {
        ["alpha", "beta"]
            .iter()
            .map(|key| {
                let config = TenantConfig::parse(key, &["K=8", "SHARDS=2"]).unwrap();
                let sketch = config.build().unwrap();
                for i in 0..5_000u64 {
                    sketch.update(req_core::OrdF64(i as f64));
                }
                TenantSnapshot {
                    key: key.to_string(),
                    config,
                    rotation: sketch.rotation(),
                    shards: sketch
                        .checkpoint()
                        .unwrap()
                        .into_iter()
                        .map(|b| b.to_vec())
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn write_load_roundtrip() {
        let dir = TempDir::new("snap").unwrap();
        let tenants = sample_tenants();
        let path = write_snapshot(dir.path(), 3, &tenants, false).unwrap();
        assert_eq!(path, snapshot_path(dir.path(), 3));
        let data = load_snapshot(&path).unwrap();
        assert_eq!(data.gen, 3);
        assert_eq!(data.tenants, tenants);
        // The shard payloads really are loadable sketches.
        let restored = ConcurrentReqSketch::<req_core::OrdF64>::from_checkpoint(
            &data.tenants[0].shards,
            data.tenants[0].rotation,
        )
        .unwrap();
        assert_eq!(restored.len(), 5_000);
    }

    #[test]
    fn truncation_and_bitflips_reject() {
        let dir = TempDir::new("snap").unwrap();
        let path = write_snapshot(dir.path(), 1, &sample_tenants(), false).unwrap();
        let good = std::fs::read(&path).unwrap();
        for cut in [0, 4, 8, 12, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(load_snapshot(&path).is_err(), "cut {cut} accepted");
        }
        for byte in [8, 20, good.len() / 2, good.len() - 3] {
            let mut bad = good.clone();
            bad[byte] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(load_snapshot(&path).is_err(), "flip at {byte} accepted");
        }
        std::fs::write(&path, &good).unwrap();
        assert!(load_snapshot(&path).is_ok());
    }

    #[test]
    fn latest_valid_skips_corrupt_generations() {
        let dir = TempDir::new("snap").unwrap();
        let tenants = sample_tenants();
        write_snapshot(dir.path(), 1, &tenants, false).unwrap();
        write_snapshot(dir.path(), 2, &tenants[..1], false).unwrap();
        // Corrupt generation 2; generation 1 must win.
        let p2 = snapshot_path(dir.path(), 2);
        let mut raw = std::fs::read(&p2).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        std::fs::write(&p2, &raw).unwrap();
        let (data, skipped) = latest_valid(dir.path()).unwrap();
        let data = data.unwrap();
        assert_eq!(data.gen, 1);
        assert_eq!(data.tenants.len(), 2);
        assert_eq!(skipped, vec![2]);
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = TempDir::new("snap").unwrap();
        let (data, skipped) = latest_valid(dir.path()).unwrap();
        assert!(data.is_none());
        assert!(skipped.is_empty());
    }

    #[test]
    fn gen_name_parsing_ignores_aliens() {
        let dir = TempDir::new("snap").unwrap();
        std::fs::write(dir.path().join("snap-0000000007.snap"), b"x").unwrap();
        std::fs::write(dir.path().join("wal-0000000003.log"), b"x").unwrap();
        std::fs::write(dir.path().join("snap-7.snap"), b"x").unwrap();
        std::fs::write(dir.path().join("notes.txt"), b"x").unwrap();
        assert_eq!(snapshot_gens(dir.path()).unwrap(), vec![7]);
        assert_eq!(wal_gens(dir.path()).unwrap(), vec![3]);
    }
}
