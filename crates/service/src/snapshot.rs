//! Snapshot store: full registry images built on binary format v3.
//!
//! A snapshot file freezes every tenant — configuration, round-robin
//! rotation, and each ingest shard's exact [`req_core::binary`] payload —
//! at one WAL rotation point. Layout:
//!
//! ```text
//! "REQSNAP1" | frame(header: gen u64 | tenant_count u32)
//!            | frame(tenant 0) | frame(tenant 1) | ...
//!            | [frame(0xDD | dedup table)]
//! ```
//!
//! Each tenant frame carries `key | config | rotation u64 | shard_count
//! u32 | (len u32 | sketch bytes)*`. Frames (see [`req_core::frame`]) make
//! a half-written or bit-rotted snapshot *detectably* invalid: the loader
//! verifies every checksum and [`latest_valid`] falls back to the newest
//! snapshot that loads in full.
//!
//! The optional trailing *dedup frame* (first payload byte `0xDD`)
//! carries the per-client idempotency window — every applied `(client,
//! seq)` pair with its recorded reply — so exactly-once retry semantics
//! survive the WAL rotation a snapshot performs. A snapshot with an
//! empty window omits the frame entirely, which keeps such files
//! byte-identical to the pre-dedup (v3) layout; the loader accepts both.
//!
//! Writes go through a `*.tmp` + atomic-rename dance, so a crash mid-write
//! never shadows the previous good snapshot.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use req_core::binary::Packable;
use req_core::frame::{read_frame, write_frame};
use req_core::ReqError;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::config::TenantConfig;
use crate::faults::{faulted_op, faulted_write, FaultPlane, FaultSite};

/// Snapshot file magic.
pub const SNAP_MAGIC: &[u8; 8] = b"REQSNAP1";

/// First payload byte of the optional dedup frame.
const DEDUP_FRAME_TAG: u8 = 0xDD;

/// The reply recorded for one applied idempotent mutation — what a
/// duplicate retry of the same `(client, seq)` gets back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppliedOutcome {
    /// A `CREATE` landed.
    Created,
    /// An `ADDB` landed; how many values it ingested.
    Added(u64),
    /// A `DROP` landed.
    Dropped,
}

/// One client's idempotency window, as persisted in a snapshot: every
/// remembered `(seq, outcome)` pair, ascending by seq.
#[derive(Debug, Clone, PartialEq)]
pub struct DedupClientSnapshot {
    /// The client identity.
    pub client_id: u64,
    /// Remembered applied sequence numbers with their recorded replies.
    pub entries: Vec<(u64, AppliedOutcome)>,
}

/// One tenant frozen at the snapshot's rotation point.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Tenant key.
    pub key: String,
    /// Configuration (carries the seed — recovery rebuilds identically).
    pub config: TenantConfig,
    /// The sharded sketch's round-robin counter at checkpoint time.
    pub rotation: u64,
    /// Per-shard [`req_core::ReqSketch::to_bytes`] payloads.
    pub shards: Vec<Vec<u8>>,
}

/// A fully-loaded snapshot file.
#[derive(Debug)]
pub struct SnapshotData {
    /// WAL generation this snapshot begins (replay `wal-<gen>.log` on top).
    pub gen: u64,
    /// Tenants in key order.
    pub tenants: Vec<TenantSnapshot>,
    /// Per-client idempotency windows at checkpoint time (empty for
    /// pre-dedup snapshot files).
    pub dedup: Vec<DedupClientSnapshot>,
}

/// `snap-<gen>.snap` path under `dir`.
pub fn snapshot_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snap-{gen:010}.snap"))
}

/// `wal-<gen>.log` path under `dir`.
pub fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:010}.log"))
}

/// Parse `<stem>-<gen 10 digits>.<ext>` names back into generations.
fn parse_gen(name: &str, stem: &str, ext: &str) -> Option<u64> {
    let rest = name.strip_prefix(stem)?.strip_prefix('-')?;
    let digits = rest.strip_suffix(ext)?.strip_suffix('.')?;
    if digits.len() != 10 {
        return None;
    }
    digits.parse().ok()
}

/// Generations of every `snap-*.snap` (ascending).
pub fn snapshot_gens(dir: &Path) -> Result<Vec<u64>, ReqError> {
    list_gens(dir, "snap", "snap")
}

/// Generations of every `wal-*.log` (ascending).
pub fn wal_gens(dir: &Path) -> Result<Vec<u64>, ReqError> {
    list_gens(dir, "wal", "log")
}

fn list_gens(dir: &Path, stem: &str, ext: &str) -> Result<Vec<u64>, ReqError> {
    let mut gens = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(gen) = parse_gen(name, stem, ext) {
                gens.push(gen);
            }
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

fn encode_tenant(t: &TenantSnapshot) -> Bytes {
    let mut out = BytesMut::new();
    t.key.pack(&mut out);
    t.config.encode(&mut out);
    out.put_u64_le(t.rotation);
    out.put_u32_le(t.shards.len() as u32);
    for shard in &t.shards {
        out.put_u32_le(shard.len() as u32);
        out.put_slice(shard);
    }
    out.freeze()
}

fn decode_tenant(payload: &[u8]) -> Result<TenantSnapshot, ReqError> {
    let mut input = Bytes::copy_from_slice(payload);
    let key = String::unpack(&mut input)?;
    let config = TenantConfig::decode(&mut input)?;
    let rotation = u64::unpack(&mut input)?;
    let shard_count = u32::unpack(&mut input)? as usize;
    if shard_count == 0 || shard_count > 256 {
        return Err(ReqError::CorruptBytes(format!(
            "snapshot tenant `{key}` claims {shard_count} shards"
        )));
    }
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let len = u32::unpack(&mut input)? as usize;
        if len > input.remaining() {
            return Err(ReqError::CorruptBytes(format!(
                "snapshot tenant `{key}` shard claims {len} bytes, {} remain",
                input.remaining()
            )));
        }
        shards.push(input.copy_to_bytes(len).to_vec());
    }
    if input.has_remaining() {
        return Err(ReqError::CorruptBytes(format!(
            "{} trailing bytes in snapshot tenant `{key}`",
            input.remaining()
        )));
    }
    Ok(TenantSnapshot {
        key,
        config,
        rotation,
        shards,
    })
}

fn encode_dedup(dedup: &[DedupClientSnapshot]) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u8(DEDUP_FRAME_TAG);
    out.put_u32_le(dedup.len() as u32);
    for client in dedup {
        out.put_u64_le(client.client_id);
        out.put_u32_le(client.entries.len() as u32);
        for (seq, outcome) in &client.entries {
            out.put_u64_le(*seq);
            match outcome {
                AppliedOutcome::Created => {
                    out.put_u8(1);
                    out.put_u64_le(0);
                }
                AppliedOutcome::Added(n) => {
                    out.put_u8(2);
                    out.put_u64_le(*n);
                }
                AppliedOutcome::Dropped => {
                    out.put_u8(3);
                    out.put_u64_le(0);
                }
            }
        }
    }
    out.freeze()
}

fn decode_dedup(mut input: Bytes) -> Result<Vec<DedupClientSnapshot>, ReqError> {
    let corrupt = |what: &str| ReqError::CorruptBytes(format!("snapshot dedup table: {what}"));
    if u8::unpack(&mut input)? != DEDUP_FRAME_TAG {
        return Err(corrupt("bad frame tag"));
    }
    let client_count = u32::unpack(&mut input)? as usize;
    let mut dedup = Vec::with_capacity(client_count.min(1 << 16));
    for _ in 0..client_count {
        let client_id = u64::unpack(&mut input)?;
        let entry_count = u32::unpack(&mut input)? as usize;
        // 17 bytes per entry must already be present.
        if input.remaining() < entry_count.saturating_mul(17) {
            return Err(corrupt("truncated client entries"));
        }
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let seq = u64::unpack(&mut input)?;
            let tag = u8::unpack(&mut input)?;
            let n = u64::unpack(&mut input)?;
            let outcome = match tag {
                1 => AppliedOutcome::Created,
                2 => AppliedOutcome::Added(n),
                3 => AppliedOutcome::Dropped,
                t => return Err(corrupt(&format!("unknown outcome tag {t}"))),
            };
            entries.push((seq, outcome));
        }
        dedup.push(DedupClientSnapshot { client_id, entries });
    }
    if input.has_remaining() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(dedup)
}

/// Write `snap-<gen>.snap` atomically (tmp + rename). With `fsync`, the
/// file is synced before the rename so the name never points at data the
/// OS hasn't persisted. `dedup` is the idempotency window to persist
/// (empty slices write the pre-dedup v3 layout); `faults` optionally
/// injects failures at the write/sync/rename sites.
pub fn write_snapshot(
    dir: &Path,
    gen: u64,
    tenants: &[TenantSnapshot],
    dedup: &[DedupClientSnapshot],
    fsync: bool,
    faults: Option<&FaultPlane>,
) -> Result<PathBuf, ReqError> {
    let mut out = BytesMut::new();
    out.put_slice(SNAP_MAGIC);
    let mut header = BytesMut::new();
    header.put_u64_le(gen);
    header.put_u32_le(tenants.len() as u32);
    write_frame(&mut out, &header);
    for t in tenants {
        write_frame(&mut out, &encode_tenant(t));
    }
    if !dedup.is_empty() {
        write_frame(&mut out, &encode_dedup(dedup));
    }

    let final_path = snapshot_path(dir, gen);
    let tmp_path = final_path.with_extension("snap.tmp");
    {
        let mut f = File::create(&tmp_path)?;
        faulted_write(faults, FaultSite::SnapWrite, &mut f, &out)?;
        f.flush()?;
        if fsync {
            faulted_op(faults, FaultSite::SnapSync)?;
            f.sync_data()?;
        }
    }
    faulted_op(faults, FaultSite::SnapRename)?;
    std::fs::rename(&tmp_path, &final_path)?;
    Ok(final_path)
}

/// Load and fully validate one snapshot file.
pub fn load_snapshot(path: &Path) -> Result<SnapshotData, ReqError> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() < SNAP_MAGIC.len() || &raw[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(ReqError::CorruptBytes("bad snapshot magic".into()));
    }
    let mut input = Bytes::from(raw);
    input.advance(SNAP_MAGIC.len());
    let mut header = read_frame(&mut input)?;
    let gen = u64::unpack(&mut header)?;
    let count = u32::unpack(&mut header)? as usize;
    if header.has_remaining() {
        return Err(ReqError::CorruptBytes("oversized snapshot header".into()));
    }
    let mut tenants = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let payload = read_frame(&mut input)?;
        tenants.push(decode_tenant(&payload)?);
    }
    // Anything after the tenants must be exactly one dedup frame;
    // pre-dedup (v3) files simply end here.
    let dedup = if input.has_remaining() {
        decode_dedup(read_frame(&mut input)?)?
    } else {
        Vec::new()
    };
    if input.has_remaining() {
        return Err(ReqError::CorruptBytes(format!(
            "{} trailing bytes after snapshot tenants",
            input.remaining()
        )));
    }
    Ok(SnapshotData {
        gen,
        tenants,
        dedup,
    })
}

/// The newest snapshot that loads in full, if any. Invalid candidates are
/// skipped (reported in the result), never deleted here.
pub fn latest_valid(dir: &Path) -> Result<(Option<SnapshotData>, Vec<u64>), ReqError> {
    let mut skipped = Vec::new();
    for gen in snapshot_gens(dir)?.into_iter().rev() {
        match load_snapshot(&snapshot_path(dir, gen)) {
            Ok(data) => return Ok((Some(data), skipped)),
            Err(_) => skipped.push(gen),
        }
    }
    Ok((None, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use req_core::ConcurrentReqSketch;

    fn sample_tenants() -> Vec<TenantSnapshot> {
        ["alpha", "beta"]
            .iter()
            .map(|key| {
                let config = TenantConfig::parse(key, &["K=8", "SHARDS=2"]).unwrap();
                let sketch = config.build().unwrap();
                for i in 0..5_000u64 {
                    sketch.update(req_core::OrdF64(i as f64));
                }
                TenantSnapshot {
                    key: key.to_string(),
                    config,
                    rotation: sketch.rotation(),
                    shards: sketch
                        .checkpoint()
                        .unwrap()
                        .into_iter()
                        .map(|b| b.to_vec())
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn write_load_roundtrip() {
        let dir = TempDir::new("snap").unwrap();
        let tenants = sample_tenants();
        let path = write_snapshot(dir.path(), 3, &tenants, &[], false, None).unwrap();
        assert_eq!(path, snapshot_path(dir.path(), 3));
        let data = load_snapshot(&path).unwrap();
        assert_eq!(data.gen, 3);
        assert_eq!(data.tenants, tenants);
        // The shard payloads really are loadable sketches.
        let restored = ConcurrentReqSketch::<req_core::OrdF64>::from_checkpoint(
            &data.tenants[0].shards,
            data.tenants[0].rotation,
        )
        .unwrap();
        assert_eq!(restored.len(), 5_000);
    }

    #[test]
    fn truncation_and_bitflips_reject() {
        let dir = TempDir::new("snap").unwrap();
        let path = write_snapshot(dir.path(), 1, &sample_tenants(), &[], false, None).unwrap();
        let good = std::fs::read(&path).unwrap();
        for cut in [0, 4, 8, 12, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(load_snapshot(&path).is_err(), "cut {cut} accepted");
        }
        for byte in [8, 20, good.len() / 2, good.len() - 3] {
            let mut bad = good.clone();
            bad[byte] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(load_snapshot(&path).is_err(), "flip at {byte} accepted");
        }
        std::fs::write(&path, &good).unwrap();
        assert!(load_snapshot(&path).is_ok());
    }

    #[test]
    fn latest_valid_skips_corrupt_generations() {
        let dir = TempDir::new("snap").unwrap();
        let tenants = sample_tenants();
        write_snapshot(dir.path(), 1, &tenants, &[], false, None).unwrap();
        write_snapshot(dir.path(), 2, &tenants[..1], &[], false, None).unwrap();
        // Corrupt generation 2; generation 1 must win.
        let p2 = snapshot_path(dir.path(), 2);
        let mut raw = std::fs::read(&p2).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        std::fs::write(&p2, &raw).unwrap();
        let (data, skipped) = latest_valid(dir.path()).unwrap();
        let data = data.unwrap();
        assert_eq!(data.gen, 1);
        assert_eq!(data.tenants.len(), 2);
        assert_eq!(skipped, vec![2]);
    }

    #[test]
    fn empty_dir_has_no_snapshot() {
        let dir = TempDir::new("snap").unwrap();
        let (data, skipped) = latest_valid(dir.path()).unwrap();
        assert!(data.is_none());
        assert!(skipped.is_empty());
    }

    #[test]
    fn dedup_table_roundtrips_and_empty_table_stays_v3() {
        let dir = TempDir::new("snap").unwrap();
        let tenants = sample_tenants();
        let dedup = vec![
            DedupClientSnapshot {
                client_id: 42,
                entries: vec![
                    (7, AppliedOutcome::Created),
                    (8, AppliedOutcome::Added(1000)),
                    (9, AppliedOutcome::Dropped),
                ],
            },
            DedupClientSnapshot {
                client_id: u64::MAX,
                entries: vec![(1, AppliedOutcome::Added(1))],
            },
        ];
        let path = write_snapshot(dir.path(), 4, &tenants, &dedup, false, None).unwrap();
        let data = load_snapshot(&path).unwrap();
        assert_eq!(data.dedup, dedup);
        assert_eq!(data.tenants, tenants);

        // Empty window → byte-identical to a pre-dedup snapshot, which
        // loads with an empty table.
        let p_new = write_snapshot(dir.path(), 5, &tenants, &[], false, None).unwrap();
        let data = load_snapshot(&p_new).unwrap();
        assert!(data.dedup.is_empty());

        // A truncated or bit-flipped dedup frame rejects the whole file.
        let good = std::fs::read(&path).unwrap();
        for cut in [good.len() - 1, good.len() - 10] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(load_snapshot(&path).is_err(), "cut {cut} accepted");
        }
        let mut bad = good.clone();
        let last = bad.len() - 3;
        bad[last] ^= 0x10;
        std::fs::write(&path, &bad).unwrap();
        assert!(load_snapshot(&path).is_err());
    }

    #[test]
    fn injected_faults_fail_writes_without_shadowing_the_previous_snapshot() {
        use crate::faults::{FaultKind, FaultPlane, FaultSite};
        let dir = TempDir::new("snap").unwrap();
        let tenants = sample_tenants();
        write_snapshot(dir.path(), 1, &tenants, &[], false, None).unwrap();

        for (site, kind) in [
            (FaultSite::SnapWrite, FaultKind::Torn),
            (FaultSite::SnapWrite, FaultKind::Error),
            (FaultSite::SnapSync, FaultKind::Error),
            (FaultSite::SnapRename, FaultKind::Error),
        ] {
            let plane = FaultPlane::new(1).with(site, kind, 1, 1);
            let err = write_snapshot(dir.path(), 2, &tenants, &[], true, Some(&plane));
            assert!(err.is_err(), "{site:?} {kind:?} did not fail");
            // Generation 2 must not exist as a *named* snapshot: the torn
            // bytes live only in the tmp file, so recovery still finds
            // generation 1 intact.
            let (data, skipped) = latest_valid(dir.path()).unwrap();
            assert_eq!(data.unwrap().gen, 1, "{site:?} {kind:?}");
            assert!(skipped.is_empty());
        }
        // Without the plane the same write goes through.
        write_snapshot(dir.path(), 2, &tenants, &[], true, None).unwrap();
        let (data, _) = latest_valid(dir.path()).unwrap();
        assert_eq!(data.unwrap().gen, 2);
    }

    #[test]
    fn gen_name_parsing_ignores_aliens() {
        let dir = TempDir::new("snap").unwrap();
        std::fs::write(dir.path().join("snap-0000000007.snap"), b"x").unwrap();
        std::fs::write(dir.path().join("wal-0000000003.log"), b"x").unwrap();
        std::fs::write(dir.path().join("snap-7.snap"), b"x").unwrap();
        std::fs::write(dir.path().join("notes.txt"), b"x").unwrap();
        assert_eq!(snapshot_gens(dir.path()).unwrap(), vec![7]);
        assert_eq!(wal_gens(dir.path()).unwrap(), vec![3]);
    }
}
