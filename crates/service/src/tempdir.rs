//! Throwaway data directories for tests, benches, and experiments.
//!
//! Not a general-purpose temp-file crate: just enough to give every
//! service instance in the test suite its own unique directory and clean
//! it up on drop. Uniqueness comes from the process id plus a process-wide
//! counter, so parallel test threads never collide.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A unique (not yet created) path under the system temp directory.
pub fn unique_dir(prefix: &str) -> PathBuf {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("req-service-{prefix}-{}-{n}", std::process::id()))
}

/// A created-on-construction, removed-on-drop directory.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh unique directory.
    pub fn new(prefix: &str) -> std::io::Result<Self> {
        let path = unique_dir(prefix);
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_and_cleaned_up() {
        let a = TempDir::new("t").unwrap();
        let b = TempDir::new("t").unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        std::fs::write(kept.join("f"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().is_dir());
    }
}
