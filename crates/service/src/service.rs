//! The durable quantile service: registry + WAL + snapshots, tied together.
//!
//! ## Write path
//!
//! Every mutation holds three things, in order: the service **gate**
//! (shared/read side — lets the snapshotter quiesce writers), the tenant's
//! **op lock** (keeps WAL order equal to apply order per tenant), and
//! briefly the **WAL appender**. The record is durable *before* the
//! in-memory sketch sees it — a crash between the two replays the record
//! on recovery, landing on the same state.
//!
//! ## Snapshot = checkpoint + rotate
//!
//! [`QuantileService::snapshot_now`] takes the gate exclusively (waiting
//! out in-flight mutations), checkpoints every tenant
//! ([`req_core::ConcurrentReqSketch::checkpoint`] — which *swaps the live
//! shards onto their own serialization*, unifying durable and in-memory
//! state), writes `snap-<g+1>.snap` atomically, rotates to
//! `wal-<g+1>.log`, and deletes older generations. Queries keep running
//! throughout; only writers pause.
//!
//! ## Recovery = latest valid snapshot + WAL tail
//!
//! [`QuantileService::open`] loads the newest snapshot that passes all its
//! checksums, rebuilds each tenant from its exact shard bytes (and
//! round-robin rotation), then replays every WAL generation ≥ the
//! snapshot's, tolerating a torn final frame (truncated before appending
//! resumes). Because checkpoints unified durable and live state, and WAL
//! replay re-applies the exact post-checkpoint batches in order, a
//! recovered service is **value-identical** to one that never crashed —
//! not merely within the sketch's error guarantee. Experiment E16 and the
//! `recovery` proptests assert this end to end. (The one degraded path:
//! if the newest snapshot itself is unreadable — bit rot, not a torn
//! write — recovery falls back to the retained previous generation and
//! replays both WAL files forward: no data is lost, but the fallback
//! replay never re-executes the lost checkpoint's RNG swap, so answers
//! are then merely within-guarantee rather than bit-identical.)

use bytes::{Buf, Bytes};
use parking_lot::{Mutex, RwLock};
use req_core::{ConcurrentReqSketch, OrdF64, ReqError};
use sketch_traits::SpaceUsage;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

use crate::config::{validate_key, Accuracy, ServiceConfig, TenantConfig};
use crate::faults::{faulted_op, FaultSite};
use crate::protocol::{IdemToken, TailSegment};
use crate::registry::{Registry, Tenant};
use crate::snapshot::{
    latest_valid, snapshot_gens, snapshot_path, wal_gens, wal_path, write_snapshot, AppliedOutcome,
    DedupClientSnapshot, TenantSnapshot,
};
use crate::wal::{
    encode_add_batch, encode_create, encode_drop, read_wal, WalRecord, WalWriter, WAL_MAGIC,
};

/// Holds the data directory's `LOCK` file; removed on drop. See
/// [`acquire_dir_lock`].
#[derive(Debug)]
struct DirLock {
    path: std::path::PathBuf,
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Guard against two live services sharing one data dir — each would
/// truncate and append the other's WAL through independent fds, tearing
/// frames and silently discarding acknowledged writes. The lock file
/// records the holder's pid; a crash leaves it behind, so acquisition
/// treats a lock whose pid is no longer alive (checked via `/proc`; on
/// systems without `/proc` a leftover lock is assumed stale) as
/// reclaimable — a crash-recovery service must never refuse to restart
/// over its own remains.
fn acquire_dir_lock(dir: &std::path::Path) -> Result<DirLock, ReqError> {
    use std::io::Write as _;
    let path = dir.join("LOCK");
    for _ in 0..2 {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                let _ = write!(f, "{}", std::process::id());
                return Ok(DirLock { path });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder: Option<u32> = std::fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse().ok());
                let ours = std::process::id();
                let alive = match holder {
                    // Our own pid: another live instance in this very
                    // process (drop releases the lock, so a same-pid
                    // leftover is never stale).
                    Some(pid) if pid == ours => true,
                    Some(pid) if std::path::Path::new("/proc").is_dir() => {
                        std::path::Path::new(&format!("/proc/{pid}")).exists()
                    }
                    _ => false,
                };
                if alive {
                    return Err(ReqError::Io(format!(
                        "data dir {} is locked by live process {} — a second service on \
                         the same directory would corrupt the WAL",
                        dir.display(),
                        holder.unwrap_or(0)
                    )));
                }
                let _ = std::fs::remove_file(&path); // stale; retry
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(ReqError::Io(format!(
        "could not acquire lock in {}",
        dir.display()
    )))
}

/// Most values one `AddBatch` record may carry: its 8-byte-per-value
/// payload (plus key/tag overhead) must stay within one
/// [`req_core::frame::MAX_FRAME_PAYLOAD`] frame, or recovery could never
/// read the record back.
pub const MAX_BATCH_VALUES: usize = (req_core::frame::MAX_FRAME_PAYLOAD - 256) / 8;

/// What [`QuantileService::open`] found on disk.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Generation of the snapshot recovery started from, if any.
    pub snapshot_gen: Option<u64>,
    /// Snapshot generations that failed validation and were skipped.
    pub skipped_snapshots: Vec<u64>,
    /// WAL files replayed (≥ the snapshot generation).
    pub wal_files_replayed: usize,
    /// Records re-applied from those files.
    pub records_replayed: u64,
    /// Bytes discarded past the last valid frame (torn tail / corruption).
    pub damaged_bytes: u64,
}

/// Live per-tenant statistics (the `STATS` reply).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Items ingested.
    pub n: u64,
    /// Items retained across shards' merged snapshot.
    pub retained: u64,
    /// Serialized size estimate of the merged snapshot, bytes.
    pub bytes: u64,
    /// Section size `k` of the merged snapshot.
    pub k: u32,
    /// Ingest shard count.
    pub shards: u32,
    /// High-rank orientation?
    pub hra: bool,
    /// Adaptive schedule?
    pub adaptive: bool,
    /// Round-robin rotation (ops routed so far).
    pub rotation: u64,
    /// Service-wide: automatic snapshot attempts that failed.
    pub snapshot_failures: u64,
    /// Service-wide: times the WAL writer poisoned (entered read-only).
    pub wal_poisoned: u64,
    /// Service-wide: mutations shed under the in-flight limit.
    pub shed: u64,
    /// Service-wide: currently serving in read-only degraded mode?
    pub read_only: bool,
}

impl fmt::Display for TenantStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} retained={} bytes={} k={} shards={} orient={} schedule={} rotation={} \
             snapshot_failures={} wal_poisoned={} shed={} mode={}",
            self.n,
            self.retained,
            self.bytes,
            self.k,
            self.shards,
            if self.hra { "hra" } else { "lra" },
            if self.adaptive {
                "adaptive"
            } else {
                "standard"
            },
            self.rotation,
            self.snapshot_failures,
            self.wal_poisoned,
            self.shed,
            if self.read_only { "ro" } else { "rw" },
        )
    }
}

impl FromStr for TenantStats {
    type Err = ReqError;

    fn from_str(s: &str) -> Result<Self, ReqError> {
        let mut stats = TenantStats {
            n: 0,
            retained: 0,
            bytes: 0,
            k: 0,
            shards: 0,
            hra: true,
            adaptive: true,
            rotation: 0,
            snapshot_failures: 0,
            wal_poisoned: 0,
            shed: 0,
            read_only: false,
        };
        let bad = |what: &str| ReqError::CorruptBytes(format!("bad STATS field `{what}`"));
        for pair in s.split_whitespace() {
            let (name, value) = pair.split_once('=').ok_or_else(|| bad(pair))?;
            match name {
                "n" => stats.n = value.parse().map_err(|_| bad(pair))?,
                "retained" => stats.retained = value.parse().map_err(|_| bad(pair))?,
                "bytes" => stats.bytes = value.parse().map_err(|_| bad(pair))?,
                "k" => stats.k = value.parse().map_err(|_| bad(pair))?,
                "shards" => stats.shards = value.parse().map_err(|_| bad(pair))?,
                "orient" => {
                    stats.hra = match value {
                        "hra" => true,
                        "lra" => false,
                        _ => return Err(bad(pair)),
                    }
                }
                "schedule" => {
                    stats.adaptive = match value {
                        "adaptive" => true,
                        "standard" => false,
                        _ => return Err(bad(pair)),
                    }
                }
                "rotation" => stats.rotation = value.parse().map_err(|_| bad(pair))?,
                "snapshot_failures" => {
                    stats.snapshot_failures = value.parse().map_err(|_| bad(pair))?
                }
                "wal_poisoned" => stats.wal_poisoned = value.parse().map_err(|_| bad(pair))?,
                "shed" => stats.shed = value.parse().map_err(|_| bad(pair))?,
                "mode" => {
                    stats.read_only = match value {
                        "ro" => true,
                        "rw" => false,
                        _ => return Err(bad(pair)),
                    }
                }
                _ => return Err(bad(pair)),
            }
        }
        Ok(stats)
    }
}

/// Group-commit bookkeeping (under a `std` mutex — its condvar pairs
/// with it; the vendored `parking_lot` has no condvar).
#[derive(Debug, Default)]
struct SyncState {
    /// Highest append sequence a successful fsync has covered.
    synced: u64,
    /// Highest append sequence a *failed* fsync attempt covered — those
    /// appends' durability is unknown, so their waiters must error.
    failed_through: u64,
    /// An fsync leader is in flight; later appenders wait instead of
    /// issuing their own fsync.
    leader: bool,
}

/// What [`QuantileService::append_wal`] achieved. `Logged` means the
/// record is durable per the config. `LoggedUnsynced` means the frame is
/// *fully in the WAL file* but the fsync failed — its durability across a
/// power cut is unknown, yet within this process (and after any crash
/// that preserves the written bytes) recovery replays it. The mutation
/// therefore **must still apply** and record its idempotency outcome
/// before surfacing the error, or a client retry would double-ingest.
#[derive(Debug)]
enum LogOutcome {
    Logged,
    LoggedUnsynced(ReqError),
}

/// How a token fared against its client's dedup window.
#[derive(Debug)]
enum DedupCheck {
    /// Never seen: apply it, then record.
    Fresh,
    /// Already applied: answer with the recorded outcome, do nothing.
    Duplicate(AppliedOutcome),
    /// Below the window: it may or may not have been applied long ago —
    /// refusing is the only answer that never double-applies.
    Stale,
}

/// One client's sliding idempotency window: the highest sequence seen and
/// the outcomes of every applied sequence within `window` of it.
#[derive(Debug, Default)]
struct ClientWindow {
    hi: u64,
    applied: BTreeMap<u64, AppliedOutcome>,
}

impl ClientWindow {
    fn check(&self, seq: u64, window: u64) -> DedupCheck {
        if let Some(outcome) = self.applied.get(&seq) {
            return DedupCheck::Duplicate(*outcome);
        }
        if self.hi >= window && seq <= self.hi - window {
            return DedupCheck::Stale;
        }
        DedupCheck::Fresh
    }

    fn record(&mut self, seq: u64, outcome: AppliedOutcome, window: u64) {
        self.applied.insert(seq, outcome);
        self.hi = self.hi.max(seq);
        // Evict sequences that fell below the window.
        while let Some((&lo, _)) = self.applied.first_key_value() {
            if self.hi >= window && lo <= self.hi - window {
                self.applied.remove(&lo);
            } else {
                break;
            }
        }
    }
}

/// All clients' windows. The outer map lock is held only for the probe;
/// each window's own mutex is then held across the client's whole
/// `[check → append → apply → record]` so two racing retries of the same
/// `(client_id, seq)` serialize instead of both passing the check.
#[derive(Debug)]
struct DedupTable {
    window: u64,
    clients: Mutex<HashMap<u64, Arc<Mutex<ClientWindow>>>>,
}

impl DedupTable {
    fn new(window: u64) -> Self {
        DedupTable {
            window: window.max(1),
            clients: Mutex::new(HashMap::new()),
        }
    }

    fn window_for(&self, client_id: u64) -> Arc<Mutex<ClientWindow>> {
        Arc::clone(self.clients.lock().entry(client_id).or_default())
    }

    /// Replay/recovery path: record without checking (the WAL is truth).
    fn record_replayed(&self, token: IdemToken, outcome: AppliedOutcome) {
        let win = self.window_for(token.client_id);
        let mut win = win.lock();
        win.record(token.seq, outcome, self.window);
    }

    /// Deterministic (client-id-sorted) dump for the snapshot's dedup
    /// frame. Called under the exclusive service gate — no window moves.
    fn to_snapshot(&self) -> Vec<DedupClientSnapshot> {
        let mut out: Vec<DedupClientSnapshot> = self
            .clients
            .lock()
            .iter()
            .map(|(&client_id, win)| {
                let win = win.lock();
                DedupClientSnapshot {
                    client_id,
                    entries: win.applied.iter().map(|(&s, &o)| (s, o)).collect(),
                }
            })
            .filter(|c| !c.entries.is_empty())
            .collect();
        out.sort_by_key(|c| c.client_id);
        out
    }

    fn restore(&self, snapshot: &[DedupClientSnapshot]) {
        for client in snapshot {
            let win = self.window_for(client.client_id);
            let mut win = win.lock();
            for &(seq, outcome) in &client.entries {
                win.record(seq, outcome, self.window);
            }
        }
    }
}

/// Releases one in-flight-mutation slot on drop (no-op when shedding is
/// disabled).
struct InflightPermit<'a> {
    counter: Option<&'a AtomicU64>,
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.counter {
            c.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Cached handles into the global telemetry registry. Registration takes
/// the registry's name-table lock, so it happens once here (cold path);
/// the hot paths below touch only the handles' atomics/shard locks.
#[derive(Debug)]
struct ServiceTelemetry {
    wal_append_micros: req_telemetry::Histogram,
    /// Monotonic tick driving 1-in-8 sampling of the append span: timing
    /// every append puts two clock reads and a sketch insert on the
    /// hottest path in the tree, and a uniform sample estimates the same
    /// latency distribution (counters elsewhere stay exact).
    append_ticks: AtomicU64,
    wal_fsync_micros: req_telemetry::Histogram,
    /// Appends acknowledged per leader fsync — the group-commit win.
    group_commit_coalesce: req_telemetry::Histogram,
    snapshot_micros: req_telemetry::Histogram,
    mutations_shed: req_telemetry::Counter,
    dedup_hits: req_telemetry::Counter,
    dedup_misses: req_telemetry::Counter,
    dedup_stale: req_telemetry::Counter,
}

impl ServiceTelemetry {
    fn new() -> ServiceTelemetry {
        let t = req_telemetry::global();
        ServiceTelemetry {
            wal_append_micros: t.histogram("service_wal_append_micros"),
            append_ticks: AtomicU64::new(0),
            wal_fsync_micros: t.histogram("service_wal_fsync_micros"),
            group_commit_coalesce: t.histogram("service_wal_group_commit_coalesce"),
            snapshot_micros: t.histogram("service_snapshot_micros"),
            mutations_shed: t.counter("service_mutations_shed_total"),
            dedup_hits: t.counter("service_dedup_hits_total"),
            dedup_misses: t.counter("service_dedup_misses_total"),
            dedup_stale: t.counter("service_dedup_stale_rejects_total"),
        }
    }
}

/// The durable, multi-tenant quantile service (in-process core; the TCP
/// layer in [`crate::server`] is a thin shell over this).
#[derive(Debug)]
pub struct QuantileService {
    cfg: ServiceConfig,
    registry: Registry,
    /// Writers hold `read()`, the snapshotter holds `write()` while it
    /// checkpoints + rotates — so a snapshot never splits a mutation's
    /// `[append → apply]` window.
    gate: RwLock<()>,
    wal: Mutex<WalWriter>,
    /// Monotonic append counter (never resets, even across WAL
    /// rotations); incremented under the `wal` lock, so sequence order
    /// equals file order.
    append_seq: AtomicU64,
    /// Physical `fsync` calls on the WAL — the group-commit win is
    /// `wal_appends() / wal_syncs()`.
    wal_syncs: AtomicU64,
    sync_state: StdMutex<SyncState>,
    sync_cond: Condvar,
    gen: AtomicU64,
    /// Records in the live WAL generation (replayed + appended) — the
    /// deterministic trigger for `snapshot_every_records`.
    records_in_gen: AtomicU64,
    snapshots_written: AtomicU64,
    snapshot_failures: AtomicU64,
    /// Per-client idempotency windows (persisted via snapshot + WAL
    /// tokens, so retries dedup across crash recovery).
    dedup: DedupTable,
    /// Serving in read-only degraded mode (WAL writer poisoned)?
    /// Mutations get `Unavailable`; queries keep answering. Cleared when
    /// a snapshot rotation installs a fresh WAL writer.
    read_only: AtomicBool,
    /// Times the WAL writer poisoned (read-only entries, cumulative).
    wal_poisoned: AtomicU64,
    /// In-flight mutations right now (only tracked when shedding is on).
    inflight: AtomicU64,
    /// Mutations shed with `Busy` under `max_inflight_mutations`.
    shed: AtomicU64,
    /// Replication follower mode: client mutations are refused with
    /// `Unavailable` while [`Self::replicate_frames`] keeps applying the
    /// primary's shipped WAL frames; queries answer (bounded-lag reads).
    /// Promotion flips it off and the node starts accepting writes.
    follower: AtomicBool,
    recovery: RecoveryReport,
    telemetry: ServiceTelemetry,
    /// Exclusive hold on the data dir; released (file removed) on drop.
    _dir_lock: DirLock,
}

impl QuantileService {
    /// Open (or create) the service rooted at `cfg.data_dir`, running
    /// crash recovery: load the latest valid snapshot, replay the WAL
    /// tail, truncate any torn frame, and resume the live generation.
    pub fn open(cfg: ServiceConfig) -> Result<Self, ReqError> {
        std::fs::create_dir_all(&cfg.data_dir)?;
        let dir_lock = acquire_dir_lock(&cfg.data_dir)?;
        // Sweep *.tmp stragglers from snapshots a crash interrupted
        // mid-write — rename never promoted them, and nothing else would
        // ever reclaim the space.
        for entry in std::fs::read_dir(&cfg.data_dir)? {
            let path = entry?.path();
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".tmp"))
            {
                let _ = std::fs::remove_file(&path);
            }
        }
        let registry = Registry::new(cfg.registry_shards);
        let dedup = DedupTable::new(cfg.dedup_window);
        let mut report = RecoveryReport::default();

        let (snap, skipped) = latest_valid(&cfg.data_dir)?;
        report.skipped_snapshots = skipped;
        let base_gen = match &snap {
            Some(data) => {
                report.snapshot_gen = Some(data.gen);
                data.gen
            }
            None => 0,
        };
        if let Some(data) = snap {
            dedup.restore(&data.dedup);
            for t in data.tenants {
                let sketch = ConcurrentReqSketch::from_checkpoint(&t.shards, t.rotation)?;
                registry.create_from_snapshot(Tenant::from_parts(t.key, t.config, sketch))?;
            }
        }

        // Replay every WAL generation from the snapshot point forward.
        // Normally that is exactly one file; older generations only join
        // in when the newest snapshot was skipped as invalid (rotation
        // keeps one prior generation around exactly for that fallback).
        let mut live_gen = base_gen;
        let mut live_valid_len = 0u64;
        let mut live_records = 0u64;
        let gens: Vec<u64> = wal_gens(&cfg.data_dir)?
            .into_iter()
            .filter(|&g| g >= base_gen)
            .collect();
        for (i, &g) in gens.iter().enumerate() {
            let replay = read_wal(&wal_path(&cfg.data_dir, g))?;
            // Damage in the *final* generation is the expected torn tail
            // of the crash. A hole in an earlier generation with later
            // generations still to replay would silently skip records in
            // the middle of history — ordering is part of the state, so
            // refuse instead of applying the later files on top.
            if replay.damaged_bytes > 0 && i + 1 < gens.len() {
                return Err(ReqError::CorruptBytes(format!(
                    "WAL generation {g} is damaged mid-history ({} bytes) with {} later \
                     generation(s) present; refusing to replay past the hole",
                    replay.damaged_bytes,
                    gens.len() - i - 1
                )));
            }
            report.wal_files_replayed += 1;
            report.records_replayed += replay.records.len() as u64;
            report.damaged_bytes += replay.damaged_bytes;
            live_gen = g;
            live_valid_len = replay.valid_len;
            live_records = replay.records.len() as u64;
            for rec in replay.records {
                Self::apply(&registry, &dedup, rec)?;
            }
        }

        let wal_file = wal_path(&cfg.data_dir, live_gen);
        let mut writer = if gens.is_empty() {
            WalWriter::create(&wal_file)?
        } else {
            WalWriter::open_truncated(&wal_file, live_valid_len)?
        };
        writer.set_faults(cfg.faults.clone());

        let service = QuantileService {
            registry,
            dedup,
            gate: RwLock::new(()),
            wal: Mutex::new(writer),
            append_seq: AtomicU64::new(0),
            wal_syncs: AtomicU64::new(0),
            sync_state: StdMutex::new(SyncState::default()),
            sync_cond: Condvar::new(),
            gen: AtomicU64::new(live_gen),
            records_in_gen: AtomicU64::new(live_records),
            snapshots_written: AtomicU64::new(0),
            snapshot_failures: AtomicU64::new(0),
            read_only: AtomicBool::new(false),
            wal_poisoned: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            follower: AtomicBool::new(false),
            recovery: report,
            telemetry: ServiceTelemetry::new(),
            cfg,
            _dir_lock: dir_lock,
        };
        // If the crash interrupted a due snapshot, take it now — this
        // re-executes the checkpoint swap at the same record index the
        // uninterrupted timeline executed it, keeping recovery
        // value-identical even across that corner.
        service.maybe_snapshot();
        Ok(service)
    }

    /// Replay-side application of one WAL record (no logging, no gate).
    /// Tokens found on replayed records are re-recorded into the dedup
    /// windows, so a client retrying across the crash still dedups.
    fn apply(registry: &Registry, dedup: &DedupTable, rec: WalRecord) -> Result<(), ReqError> {
        let token = rec.token();
        let outcome = match rec {
            WalRecord::Create { key, config, .. } => {
                registry.create_with(&key, config, || Ok(()))?;
                AppliedOutcome::Created
            }
            WalRecord::AddBatch { key, values, .. } => {
                let tenant = registry.get(&key).ok_or_else(|| {
                    ReqError::CorruptBytes(format!("WAL ingests into unknown key `{key}`"))
                })?;
                tenant.sketch.update_batch(&values);
                AppliedOutcome::Added(values.len() as u64)
            }
            WalRecord::Drop { key, .. } => {
                registry.drop_with(&key, || Ok(()))?;
                AppliedOutcome::Dropped
            }
        };
        if let Some(token) = token {
            dedup.record_replayed(token, outcome);
        }
        Ok(())
    }

    /// What recovery found when this instance opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The live WAL generation.
    pub fn generation(&self) -> u64 {
        self.gen.load(Ordering::Relaxed)
    }

    /// Snapshots written by this instance.
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written.load(Ordering::Relaxed)
    }

    /// Records in the live WAL generation.
    pub fn records_in_generation(&self) -> u64 {
        self.records_in_gen.load(Ordering::Relaxed)
    }

    fn tenant(&self, key: &str) -> Result<Arc<Tenant>, ReqError> {
        self.registry
            .get(key)
            .ok_or_else(|| ReqError::InvalidParameter(format!("no such key `{key}`")))
    }

    /// Append one record and make it durable per the config. Callers hold
    /// the service gate (shared) for the whole `[append → apply]` window,
    /// which is what lets group commit fsync through a cloned fd without
    /// racing a WAL rotation — rotation takes the gate exclusively.
    ///
    /// `Err` means the frame is **not** in the file (a failed write rolls
    /// the file back; a failed rollback poisons the writer and trips
    /// read-only mode, and the torn bytes are exactly what recovery's
    /// torn-tail truncation discards). [`LogOutcome::LoggedUnsynced`]
    /// means the frame **is** in the file but its fsync failed — the
    /// caller must apply-and-record before surfacing the error.
    fn append_wal(&self, frame: &[u8]) -> Result<LogOutcome, ReqError> {
        if self.telemetry.append_ticks.fetch_add(1, Ordering::Relaxed) & 7 != 0 {
            return self.append_wal_inner(frame);
        }
        let timer = self.telemetry.wal_append_micros.begin();
        let result = self.append_wal_inner(frame);
        self.telemetry.wal_append_micros.finish(timer);
        result
    }

    fn append_wal_inner(&self, frame: &[u8]) -> Result<LogOutcome, ReqError> {
        let seq;
        {
            let mut wal = self.wal.lock();
            if let Err(e) = wal.append(frame) {
                if wal.poisoned() {
                    self.enter_read_only();
                }
                return Err(e);
            }
            // Under the wal lock: sequence order equals file order.
            seq = self.append_seq.fetch_add(1, Ordering::Relaxed) + 1;
            if !self.cfg.fsync {
                return Ok(LogOutcome::Logged);
            }
            if !self.cfg.group_commit {
                self.wal_syncs.fetch_add(1, Ordering::Relaxed);
                let fsync_timer = self.telemetry.wal_fsync_micros.begin();
                let synced = wal.sync();
                self.telemetry.wal_fsync_micros.finish(fsync_timer);
                return Ok(match synced {
                    Ok(()) => LogOutcome::Logged,
                    Err(e) => LogOutcome::LoggedUnsynced(e),
                });
            }
        }
        Ok(match self.group_commit(seq) {
            Ok(()) => LogOutcome::Logged,
            Err(e) => LogOutcome::LoggedUnsynced(e),
        })
    }

    /// Trip read-only degraded mode (idempotent; counts first entries).
    fn enter_read_only(&self) {
        if !self.read_only.swap(true, Ordering::SeqCst) {
            self.wal_poisoned.fetch_add(1, Ordering::Relaxed);
            req_telemetry::global().event(
                "wal_poisoned",
                format!(
                    "gen={} serving read-only until rotation heals the writer",
                    self.gen.load(Ordering::Relaxed)
                ),
            );
        }
    }

    /// Wait until a successful fsync covers append sequence `seq`,
    /// becoming the fsync leader if nobody is. One leader syncs on behalf
    /// of every record appended before its watermark snapshot — under 16
    /// concurrent writers, one `fsync` typically acknowledges many
    /// appends (measured in BENCH.md).
    fn group_commit(&self, seq: u64) -> Result<(), ReqError> {
        let mut state = self.sync_state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            // Failure first: a failed attempt that covered us means our
            // record's durability is unknown — erring is the only honest
            // answer even if a later sync succeeds.
            if state.failed_through >= seq {
                return Err(ReqError::Io(
                    "WAL fsync failed; this append's durability is unknown".into(),
                ));
            }
            if state.synced >= seq {
                return Ok(());
            }
            if state.leader {
                state = self
                    .sync_cond
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
                continue;
            }
            state.leader = true;
            drop(state);
            // A one-scheduler-pass commit window: let concurrently
            // running appenders land their records before the watermark
            // snapshot, so one fsync acknowledges them all. Costs one
            // yield (~µs) when nobody else is runnable; multiplies
            // coalescing when writers overlap.
            std::thread::yield_now();
            // Snapshot the watermark *before* syncing: every append with
            // seq ≤ covered is in the file (both were serialized by the
            // wal lock), so one sync_data on the cloned fd covers them
            // all. Appends that land after this point simply wait for the
            // next leader.
            let (covered, handle) = {
                let wal = self.wal.lock();
                (self.append_seq.load(Ordering::Relaxed), wal.sync_handle())
            };
            // The cloned-fd leader sync bypasses `WalWriter::sync`, so it
            // carries its own injection point for the WalSync fault site.
            let fsync_timer = self.telemetry.wal_fsync_micros.begin();
            let result = handle.and_then(|file| {
                faulted_op(self.cfg.faults.as_deref(), FaultSite::WalSync)
                    .map_err(ReqError::from)?;
                file.sync_data().map_err(ReqError::from)
            });
            self.telemetry.wal_fsync_micros.finish(fsync_timer);
            self.wal_syncs.fetch_add(1, Ordering::Relaxed);
            state = self.sync_state.lock().unwrap_or_else(|p| p.into_inner());
            state.leader = false;
            match &result {
                Ok(()) => {
                    if covered > state.synced {
                        self.telemetry
                            .group_commit_coalesce
                            .observe(covered - state.synced);
                    }
                    state.synced = state.synced.max(covered);
                }
                Err(_) => state.failed_through = state.failed_through.max(covered),
            }
            self.sync_cond.notify_all();
            // Our own seq ≤ covered (we appended before snapshotting the
            // watermark), so the next loop iteration resolves us.
            result?;
        }
    }

    /// Total WAL records appended by this instance (all generations).
    pub fn wal_appends(&self) -> u64 {
        self.append_seq.load(Ordering::Relaxed)
    }

    /// Physical WAL `fsync` calls issued by this instance. With
    /// `fsync: true` and group commit, this trails [`Self::wal_appends`]
    /// under concurrency; without group commit the two advance in
    /// lockstep.
    pub fn wal_syncs(&self) -> u64 {
        self.wal_syncs.load(Ordering::Relaxed)
    }

    /// Admission control for mutations: refuse in read-only mode, shed
    /// when the in-flight limit is hit; otherwise hand out a permit that
    /// releases its slot on drop.
    fn mutation_permit(&self) -> Result<InflightPermit<'_>, ReqError> {
        if self.follower.load(Ordering::SeqCst) {
            return Err(ReqError::Unavailable(
                "node is a replication follower; mutations apply on the primary — \
                 retry there (or here after promotion)"
                    .into(),
            ));
        }
        if self.read_only.load(Ordering::SeqCst) {
            return Err(ReqError::Unavailable(
                "service is read-only (WAL writer poisoned); queries still answer — \
                 mutations resume after the next successful snapshot rotation"
                    .into(),
            ));
        }
        let max = self.cfg.max_inflight_mutations;
        if max == 0 {
            return Ok(InflightPermit { counter: None });
        }
        let now = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        if now > max {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            self.shed.fetch_add(1, Ordering::Relaxed);
            self.telemetry.mutations_shed.inc();
            return Err(ReqError::Busy(format!(
                "load shed: {now} in-flight mutations exceed the limit of {max}; retry \
                 after backoff"
            )));
        }
        Ok(InflightPermit {
            counter: Some(&self.inflight),
        })
    }

    /// Resolve `token` against its client's **already locked** window.
    /// `Ok(None)` means fresh (proceed, then `record` under the same
    /// guard); `Ok(Some(outcome))` means duplicate (answer without
    /// re-applying). The caller holds the guard across the whole
    /// `[check → append → apply → record]`, so a racing retry of the
    /// same seq serializes behind it and then observes the duplicate.
    fn dedup_check(
        &self,
        win: Option<&ClientWindow>,
        token: Option<IdemToken>,
    ) -> Result<Option<AppliedOutcome>, ReqError> {
        let (Some(win), Some(token)) = (win, token) else {
            return Ok(None);
        };
        match win.check(token.seq, self.dedup.window) {
            DedupCheck::Fresh => {
                self.telemetry.dedup_misses.inc();
                Ok(None)
            }
            DedupCheck::Duplicate(outcome) => {
                self.telemetry.dedup_hits.inc();
                Ok(Some(outcome))
            }
            DedupCheck::Stale => {
                self.telemetry.dedup_stale.inc();
                req_telemetry::global().event("dedup_stale_reject", format!("token={token}"));
                Err(ReqError::InvalidParameter(format!(
                    "idempotency token {token} fell out of the {}-op dedup window; \
                     its outcome is unknowable",
                    self.dedup.window
                )))
            }
        }
    }

    /// Create tenant `key`. Fails if it exists; the configuration is
    /// validated, logged, and only then applied.
    pub fn create(&self, key: &str, config: TenantConfig) -> Result<(), ReqError> {
        self.create_with_token(key, config, None).map(|_| ())
    }

    /// [`Self::create`] carrying an idempotency token: a retry of an
    /// already-applied `(client_id, seq)` returns the recorded outcome
    /// instead of `already exists`.
    pub fn create_with_token(
        &self,
        key: &str,
        config: TenantConfig,
        token: Option<IdemToken>,
    ) -> Result<AppliedOutcome, ReqError> {
        validate_key(key)?;
        let _permit = self.mutation_permit()?;
        let log = {
            let _gate = self.gate.read();
            let win = token.map(|t| self.dedup.window_for(t.client_id));
            let mut win = win.as_ref().map(|w| w.lock());
            if let Some(outcome) = self.dedup_check(win.as_deref(), token)? {
                return match outcome {
                    AppliedOutcome::Created => Ok(outcome),
                    other => Err(ReqError::InvalidParameter(format!(
                        "idempotency token {} was used for a different operation ({other:?})",
                        token.expect("dup implies token")
                    ))),
                };
            }
            let frame = encode_create(key, &config, &token);
            let log = self
                .registry
                .create_with(key, config, || self.append_wal(&frame))?;
            self.records_in_gen.fetch_add(1, Ordering::Relaxed);
            if let (Some(win), Some(token)) = (win.as_deref_mut(), token) {
                win.record(token.seq, AppliedOutcome::Created, self.dedup.window);
            }
            log
        };
        self.maybe_snapshot();
        match log {
            LogOutcome::Logged => Ok(AppliedOutcome::Created),
            LogOutcome::LoggedUnsynced(e) => Err(e),
        }
    }

    /// Ingest a batch into `key`, returning how many values landed.
    /// Empty batches are a no-op (nothing logged); batches too large for
    /// one WAL frame are rejected (chunk them) rather than encoded into a
    /// frame the recovery reader would refuse.
    pub fn add_batch(&self, key: &str, values: &[OrdF64]) -> Result<u64, ReqError> {
        self.add_batch_with_token(key, values, None)
    }

    /// [`Self::add_batch`] carrying an idempotency token: a retry of an
    /// already-applied `(client_id, seq)` answers with the original count
    /// without ingesting the batch a second time.
    pub fn add_batch_with_token(
        &self,
        key: &str,
        values: &[OrdF64],
        token: Option<IdemToken>,
    ) -> Result<u64, ReqError> {
        if values.is_empty() {
            return Ok(0);
        }
        if values.len() > MAX_BATCH_VALUES {
            return Err(ReqError::InvalidParameter(format!(
                "batch of {} values exceeds the per-record limit {MAX_BATCH_VALUES}; \
                 split it into smaller ADDBs",
                values.len()
            )));
        }
        let _permit = self.mutation_permit()?;
        let log = {
            let _gate = self.gate.read();
            let win = token.map(|t| self.dedup.window_for(t.client_id));
            let mut win = win.as_ref().map(|w| w.lock());
            if let Some(outcome) = self.dedup_check(win.as_deref(), token)? {
                return match outcome {
                    AppliedOutcome::Added(n) => Ok(n),
                    other => Err(ReqError::InvalidParameter(format!(
                        "idempotency token {} was used for a different operation ({other:?})",
                        token.expect("dup implies token")
                    ))),
                };
            }
            let tenant = self.tenant(key)?;
            let _op = tenant.op_lock.lock();
            // Re-check under the op lock: a concurrent DROP may have
            // logged its record after we resolved the Arc; appending an
            // AddBatch after the tenant's Drop would poison every future
            // replay.
            if tenant.dropped.load(std::sync::atomic::Ordering::SeqCst) {
                return Err(ReqError::InvalidParameter(format!("no such key `{key}`")));
            }
            let log = self.append_wal(&encode_add_batch(key, values, &token))?;
            tenant.sketch.update_batch(values);
            self.records_in_gen.fetch_add(1, Ordering::Relaxed);
            if let (Some(win), Some(token)) = (win.as_deref_mut(), token) {
                win.record(
                    token.seq,
                    AppliedOutcome::Added(values.len() as u64),
                    self.dedup.window,
                );
            }
            log
        };
        self.maybe_snapshot();
        match log {
            LogOutcome::Logged => Ok(values.len() as u64),
            LogOutcome::LoggedUnsynced(e) => Err(e),
        }
    }

    /// Ingest one value (logged as a one-element batch; the sketch's batch
    /// path is bit-identical to per-item ingest).
    pub fn add(&self, key: &str, value: f64) -> Result<(), ReqError> {
        self.add_batch(key, &[OrdF64(value)]).map(|_| ())
    }

    /// Drop tenant `key` and its data.
    pub fn drop_key(&self, key: &str) -> Result<(), ReqError> {
        self.drop_key_with_token(key, None).map(|_| ())
    }

    /// [`Self::drop_key`] carrying an idempotency token: a retry of an
    /// already-applied `(client_id, seq)` returns the recorded outcome
    /// instead of `no such key`.
    pub fn drop_key_with_token(
        &self,
        key: &str,
        token: Option<IdemToken>,
    ) -> Result<AppliedOutcome, ReqError> {
        let _permit = self.mutation_permit()?;
        let log = {
            let _gate = self.gate.read();
            let win = token.map(|t| self.dedup.window_for(t.client_id));
            let mut win = win.as_ref().map(|w| w.lock());
            if let Some(outcome) = self.dedup_check(win.as_deref(), token)? {
                return match outcome {
                    AppliedOutcome::Dropped => Ok(outcome),
                    other => Err(ReqError::InvalidParameter(format!(
                        "idempotency token {} was used for a different operation ({other:?})",
                        token.expect("dup implies token")
                    ))),
                };
            }
            let frame = encode_drop(key, &token);
            let log = self.registry.drop_with(key, || self.append_wal(&frame))?;
            self.records_in_gen.fetch_add(1, Ordering::Relaxed);
            if let (Some(win), Some(token)) = (win.as_deref_mut(), token) {
                win.record(token.seq, AppliedOutcome::Dropped, self.dedup.window);
            }
            log
        };
        self.maybe_snapshot();
        match log {
            LogOutcome::Logged => Ok(AppliedOutcome::Dropped),
            LogOutcome::LoggedUnsynced(e) => Err(e),
        }
    }

    /// Estimated rank `|{x ≤ v}|` for tenant `key`.
    pub fn rank(&self, key: &str, v: f64) -> Result<u64, ReqError> {
        self.tenant(key)?.sketch.rank(&OrdF64(v))
    }

    /// Estimated `q`-quantile for tenant `key`; `None` while empty.
    pub fn quantile(&self, key: &str, q: f64) -> Result<Option<f64>, ReqError> {
        if !(0.0..=1.0).contains(&q) {
            return Err(ReqError::InvalidParameter(format!(
                "quantile rank {q} outside [0, 1]"
            )));
        }
        Ok(self.tenant(key)?.sketch.quantile(q)?.map(|v| v.0))
    }

    /// Normalized CDF of tenant `key` at ascending `points`.
    pub fn cdf(&self, key: &str, points: &[f64]) -> Result<Vec<f64>, ReqError> {
        let split: Vec<OrdF64> = points.iter().copied().map(OrdF64).collect();
        if split.windows(2).any(|w| w[0] > w[1]) {
            return Err(ReqError::InvalidParameter(
                "CDF split points must be ascending".into(),
            ));
        }
        self.tenant(key)?.sketch.cdf(&split)
    }

    /// Live statistics for tenant `key`.
    pub fn stats(&self, key: &str) -> Result<TenantStats, ReqError> {
        let tenant = self.tenant(key)?;
        let merged = tenant.sketch.cached_snapshot()?;
        Ok(TenantStats {
            n: tenant.sketch.len(),
            retained: merged.retained() as u64,
            bytes: merged.size_bytes() as u64,
            k: merged.k(),
            shards: tenant.config.shards,
            hra: tenant.config.hra,
            adaptive: tenant.config.schedule == req_core::CompactionSchedule::Adaptive,
            rotation: tenant.sketch.rotation(),
            snapshot_failures: self.snapshot_failures(),
            wal_poisoned: self.wal_poisoned.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            read_only: self.read_only.load(Ordering::SeqCst),
        })
    }

    /// Serving in read-only degraded mode right now?
    pub fn read_only(&self) -> bool {
        self.read_only.load(Ordering::SeqCst)
    }

    /// Times the WAL writer poisoned (read-only entries, cumulative).
    pub fn wal_poisoned(&self) -> u64 {
        self.wal_poisoned.load(Ordering::Relaxed)
    }

    /// Mutations shed with `Busy` under the in-flight limit.
    pub fn shed_requests(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// All tenant keys, sorted.
    pub fn list(&self) -> Vec<String> {
        self.registry.keys_sorted()
    }

    /// Take the record-count trigger if it is due — best-effort, like the
    /// background snapshotter. The mutation that tripped the trigger has
    /// already durably succeeded; surfacing a transient snapshot I/O error
    /// as *its* result would invite the client to retry (and double-ingest)
    /// an op that landed. A failed snapshot leaves the record counter at or
    /// above the threshold, so the next mutation retries it; failures are
    /// counted in [`Self::snapshot_failures`].
    fn maybe_snapshot(&self) {
        let every = self.cfg.snapshot_every_records;
        if every > 0
            && self.records_in_gen.load(Ordering::Relaxed) >= every
            && self.snapshot_now().is_err()
        {
            self.snapshot_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot attempts (record-count trigger) that failed; the explicit
    /// `SNAPSHOT` command still surfaces its error to the caller.
    pub fn snapshot_failures(&self) -> u64 {
        self.snapshot_failures.load(Ordering::Relaxed)
    }

    /// Checkpoint every tenant, write `snap-<g+1>.snap`, rotate to
    /// `wal-<g+1>.log`, and delete generations older than the previous
    /// one. Returns the new generation.
    pub fn snapshot_now(&self) -> Result<u64, ReqError> {
        self.rotate(false)
    }

    /// [`Self::snapshot_now`] without the empty-generation early return:
    /// the rotation happens even when nothing new landed. A replication
    /// follower mirrors its primary's generation seals with this — the
    /// checkpoint's shard swap then executes at the *same record index*
    /// on both sides, which is what keeps follower state byte-identical
    /// to the primary across a primary snapshot rotation.
    pub fn rotate_generation(&self) -> Result<u64, ReqError> {
        self.rotate(true)
    }

    fn rotate(&self, force: bool) -> Result<u64, ReqError> {
        // Dropping the token (early return, error) records nothing.
        let timer = self.telemetry.snapshot_micros.begin();
        let new_gen;
        {
            let _gate = self.gate.write(); // quiesce writers
                                           // Another racer may have snapshotted while we waited; if the
                                           // live generation has no records, there is nothing to fold in.
                                           // (Unless we are read-only: then the rotation itself is the
                                           // point — it installs a fresh, unpoisoned WAL writer. A forced
                                           // rotation — a follower mirroring a seal — always proceeds.)
            if !force
                && self.records_in_gen.load(Ordering::Relaxed) == 0
                && self.snapshots_written.load(Ordering::Relaxed) > 0
                && !self.read_only.load(Ordering::SeqCst)
            {
                return Ok(self.gen.load(Ordering::Relaxed));
            }
            new_gen = self.gen.load(Ordering::Relaxed) + 1;
            let tenants: Vec<TenantSnapshot> = self
                .registry
                .tenants_sorted()
                .iter()
                .map(|t| -> Result<TenantSnapshot, ReqError> {
                    Ok(TenantSnapshot {
                        key: t.name.clone(),
                        config: t.config.clone(),
                        rotation: t.sketch.rotation(),
                        shards: t
                            .sketch
                            .checkpoint()?
                            .into_iter()
                            .map(|b| b.to_vec())
                            .collect(),
                    })
                })
                .collect::<Result<_, _>>()?;
            write_snapshot(
                &self.cfg.data_dir,
                new_gen,
                &tenants,
                &self.dedup.to_snapshot(),
                self.cfg.fsync,
                self.cfg.faults.as_deref(),
            )?;
            let mut writer = WalWriter::create(&wal_path(&self.cfg.data_dir, new_gen))?;
            writer.set_faults(self.cfg.faults.clone());
            *self.wal.lock() = writer;
            self.gen.store(new_gen, Ordering::Relaxed);
            self.records_in_gen.store(0, Ordering::Relaxed);
            self.snapshots_written.fetch_add(1, Ordering::Relaxed);
            let micros = self.telemetry.snapshot_micros.finish(timer);
            let telemetry = req_telemetry::global();
            telemetry.event("snapshot_rotated", format!("gen={new_gen} micros={micros}"));
            // The fresh writer is unpoisoned and the snapshot holds every
            // applied record — safe to exit read-only degraded mode.
            if self.read_only.swap(false, Ordering::SeqCst) {
                telemetry.event("wal_healed", format!("gen={new_gen} read-write restored"));
            }
        }
        // Generations before the *previous* one are now doubly shadowed;
        // delete them best-effort. The immediately-previous snapshot and
        // WAL are deliberately retained: if the snapshot just written
        // ever fails its checksums (bit rot), recovery falls back to
        // generation `new_gen - 1` and replays forward — without this,
        // one bad file would silently erase every snapshotted tenant.
        for g in snapshot_gens(&self.cfg.data_dir).unwrap_or_default() {
            if g + 1 < new_gen {
                let _ = std::fs::remove_file(snapshot_path(&self.cfg.data_dir, g));
            }
        }
        for g in wal_gens(&self.cfg.data_dir).unwrap_or_default() {
            if g + 1 < new_gen {
                let _ = std::fs::remove_file(wal_path(&self.cfg.data_dir, g));
            }
        }
        Ok(new_gen)
    }

    /// Spawn a background thread snapshotting every `interval` (when the
    /// live generation has records). The returned handle stops and joins
    /// the thread on drop.
    pub fn spawn_snapshotter(self: &Arc<Self>, interval: Duration) -> Snapshotter {
        let service = Arc::clone(self);
        let signal = Arc::new((StdMutex::new(false), Condvar::new()));
        let thread_signal = Arc::clone(&signal);
        let handle = std::thread::spawn(move || {
            let (stop, wake) = &*thread_signal;
            let mut stopped = stop.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                let (guard, _timeout) = wake
                    .wait_timeout(stopped, interval)
                    .unwrap_or_else(|p| p.into_inner());
                stopped = guard;
                if *stopped {
                    return;
                }
                if service.records_in_generation() > 0 {
                    // Best-effort: an I/O error here must not kill the
                    // thread; the next tick retries.
                    let _ = service.snapshot_now();
                }
            }
        });
        Snapshotter {
            signal,
            handle: Some(handle),
        }
    }

    // -----------------------------------------------------------------
    // Replication: WAL-tail shipping (primary side) and frame replay
    // (follower side). See docs/ARCHITECTURE.md "Cluster layer".
    // -----------------------------------------------------------------

    /// Switch follower mode on or off. A follower refuses client
    /// mutations with `Unavailable` (they belong on the primary) while
    /// [`Self::replicate_frames`] keeps applying shipped records; queries
    /// keep answering — that is the bounded-lag follower read. Promotion
    /// after a primary failure is `set_follower(false)`.
    pub fn set_follower(&self, follower: bool) {
        if self.follower.swap(follower, Ordering::SeqCst) != follower {
            req_telemetry::global().event(
                if follower {
                    "follower_entered"
                } else {
                    "follower_left"
                },
                format!("gen={}", self.gen.load(Ordering::Relaxed)),
            );
        }
    }

    /// Is this node currently a replication follower?
    pub fn is_follower(&self) -> bool {
        self.follower.load(Ordering::SeqCst)
    }

    /// The live WAL generation and the byte length of its valid prefix —
    /// the exact position a fully caught-up follower's [`Self::tail`]
    /// cursor points at. Taken under the shared gate so the pair is never
    /// split by a rotation.
    pub fn wal_watermark(&self) -> (u64, u64) {
        let _gate = self.gate.read();
        let wal = self.wal.lock();
        (self.gen.load(Ordering::Relaxed), wal.valid_len())
    }

    /// Serve one slice of generation `gen`'s WAL for a replication
    /// follower: whole, CRC-valid, decodable frames starting at byte
    /// `offset` (0 resolves to the first frame after the file magic), at
    /// most `max_bytes` of them — but always at least one frame when one
    /// is available, so a frame larger than the budget cannot wedge the
    /// stream. A torn or rolled-back tail is *never* shipped: the
    /// follower sees exactly the bytes crash recovery would replay.
    ///
    /// Reads the file without the service gate — an append racing this
    /// read can only make the tail's last frame incomplete, and
    /// incomplete frames are excluded the same way recovery excludes
    /// them. `sealed` reports whether `gen` has been rotated away (its
    /// file is final); the follower then mirrors the rotation via
    /// [`Self::rotate_generation`] and resumes from `gen + 1`.
    pub fn tail(&self, gen: u64, offset: u64, max_bytes: u32) -> Result<TailSegment, ReqError> {
        let raw = match std::fs::read(wal_path(&self.cfg.data_dir, gen)) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ReqError::InvalidParameter(format!(
                    "WAL generation {gen} is not on disk (pruned or never written); \
                     re-seed the follower from a snapshot"
                )));
            }
            Err(e) => return Err(e.into()),
        };
        if raw.len() < WAL_MAGIC.len() || raw[..WAL_MAGIC.len()] != WAL_MAGIC[..] {
            return Err(ReqError::CorruptBytes(format!(
                "WAL generation {gen} has no valid magic header"
            )));
        }
        let start = if offset == 0 {
            WAL_MAGIC.len() as u64
        } else {
            offset
        };
        if start < WAL_MAGIC.len() as u64 || start > raw.len() as u64 {
            return Err(ReqError::InvalidParameter(format!(
                "tail offset {offset} outside generation {gen}'s {} bytes",
                raw.len()
            )));
        }
        let mut input = Bytes::copy_from_slice(&raw[start as usize..]);
        let budget = (max_bytes as usize).min(crate::protocol::binary::MAX_MESSAGE_PAYLOAD - 4096);
        let mut shipped = 0usize;
        loop {
            let before = input.remaining();
            // Mirror recovery's stop conditions exactly: a frame must be
            // length-complete, CRC-clean, *and* decode to a record.
            let Ok(payload) = req_core::frame::read_frame(&mut input) else {
                break;
            };
            if WalRecord::decode(payload).is_err() {
                break;
            }
            let consumed = before - input.remaining();
            if shipped > 0 && shipped + consumed > budget {
                break;
            }
            shipped += consumed;
            if shipped >= budget {
                break;
            }
        }
        // Load the live generation *after* reading the file: if a
        // rotation raced us, the file we read was already final.
        let latest_gen = self.gen.load(Ordering::Relaxed);
        Ok(TailSegment {
            gen,
            offset: start,
            sealed: gen < latest_gen,
            latest_gen,
            frames: raw[start as usize..start as usize + shipped].to_vec(),
        })
    }

    /// Follower-side replay of a [`TailSegment`]'s frames: append each
    /// frame to the local WAL **byte-for-byte** and apply its record, in
    /// the primary's `[append → apply]` order. Tokens on replicated
    /// records re-populate the dedup windows, so a client retrying a
    /// mutation against this node *after promotion* still dedups.
    /// Returns how many records were applied.
    ///
    /// The walk validates each frame before touching anything; it stops
    /// at the first invalid one with an error. Everything applied before
    /// the stop is durable and consistent — re-shipping from the local
    /// [`Self::wal_watermark`] resumes cleanly, so a torn or corrupted
    /// replication stream can delay convergence but never corrupt state.
    pub fn replicate_frames(&self, frames: &[u8]) -> Result<u64, ReqError> {
        if !self.is_follower() {
            return Err(ReqError::InvalidParameter(
                "replicate_frames on a non-follower node; demote it explicitly first".into(),
            ));
        }
        let _gate = self.gate.read();
        let mut input = Bytes::copy_from_slice(frames);
        let mut consumed_total = 0usize;
        let mut applied = 0u64;
        while input.has_remaining() {
            let before = input.remaining();
            let payload = req_core::frame::read_frame(&mut input)?;
            let rec = WalRecord::decode(payload)?;
            let consumed = before - input.remaining();
            let frame_bytes = &frames[consumed_total..consumed_total + consumed];
            consumed_total += consumed;
            // Same contract as the primary's mutation path: even when the
            // fsync outcome is unknown, a frame that reached the file
            // must be applied before the error surfaces, or the durable
            // and in-memory states would diverge.
            let log = self.append_wal(frame_bytes)?;
            Self::apply(&self.registry, &self.dedup, rec)?;
            self.records_in_gen.fetch_add(1, Ordering::Relaxed);
            applied += 1;
            if let LogOutcome::LoggedUnsynced(e) = log {
                return Err(e);
            }
        }
        Ok(applied)
    }

    /// The tenant's serialized per-shard sketches (binary v3), for
    /// scatter/gather `MERGE` at a router. Encodes *clones* of the live
    /// shards — byte-identical to what a checkpoint would write, while
    /// the live RNGs and epochs stay untouched, so serving merge queries
    /// never perturbs replication byte-identity.
    pub fn sketch_parts(&self, key: &str) -> Result<Vec<Vec<u8>>, ReqError> {
        Ok(self
            .tenant(key)?
            .sketch
            .encode_shards()
            .into_iter()
            .map(|b| b.to_vec())
            .collect())
    }
}

/// Handle to the background snapshotter thread; stops it on drop.
#[derive(Debug)]
pub struct Snapshotter {
    signal: Arc<(StdMutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Snapshotter {
    fn drop(&mut self) {
        let (stop, wake) = &*self.signal;
        *stop.lock().unwrap_or_else(|p| p.into_inner()) = true;
        wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Free helper: an accuracy envelope for test assertions — the ε the
/// tenant's policy targets, or a conservative default for fixed-`k`.
pub fn accuracy_epsilon(config: &TenantConfig) -> f64 {
    match config.accuracy {
        Accuracy::EpsDelta(eps, _) => eps,
        Accuracy::K(_) => 0.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn svc(dir: &std::path::Path) -> QuantileService {
        QuantileService::open(ServiceConfig::new(dir)).unwrap()
    }

    fn batch(range: std::ops::Range<u64>) -> Vec<OrdF64> {
        range.map(|i| OrdF64(i as f64)).collect()
    }

    #[test]
    fn create_ingest_query_cycle() {
        let dir = TempDir::new("svc").unwrap();
        let s = svc(dir.path());
        s.create(
            "lat",
            TenantConfig::parse("lat", &["K=16", "SHARDS=2"]).unwrap(),
        )
        .unwrap();
        assert_eq!(s.add_batch("lat", &batch(0..10_000)).unwrap(), 10_000);
        s.add("lat", 424_242.0).unwrap();
        let stats = s.stats("lat").unwrap();
        assert_eq!(stats.n, 10_001);
        assert!(stats.retained > 0 && stats.retained <= 10_001);
        let r = s.rank("lat", 5_000.0).unwrap();
        assert!((r as f64 - 5_001.0).abs() / 5_001.0 < 0.2, "rank {r}");
        let q = s.quantile("lat", 0.5).unwrap().unwrap();
        assert!((q - 5_000.0).abs() < 1_500.0, "median {q}");
        let cdf = s.cdf("lat", &[1_000.0, 9_000.0]).unwrap();
        assert!(cdf[0] < cdf[1]);
        assert_eq!(s.list(), vec!["lat".to_string()]);
        s.drop_key("lat").unwrap();
        assert!(s.rank("lat", 1.0).is_err());
    }

    #[test]
    fn restart_replays_wal_to_same_answers() {
        let dir = TempDir::new("svc").unwrap();
        let probes: Vec<f64> = (0..20).map(|i| i as f64 * 997.0).collect();
        let want: Vec<u64> = {
            let s = svc(dir.path());
            s.create("t", TenantConfig::for_key("t")).unwrap();
            for c in 0..10 {
                s.add_batch("t", &batch(c * 2_000..(c + 1) * 2_000))
                    .unwrap();
            }
            probes.iter().map(|&p| s.rank("t", p).unwrap()).collect()
        }; // dropped without any snapshot: pure WAL replay
        let s = svc(dir.path());
        assert_eq!(s.recovery_report().records_replayed, 11);
        assert_eq!(s.recovery_report().snapshot_gen, None);
        let got: Vec<u64> = probes.iter().map(|&p| s.rank("t", p).unwrap()).collect();
        assert_eq!(got, want);
        assert_eq!(s.stats("t").unwrap().n, 20_000);
    }

    #[test]
    fn snapshot_rotates_and_restart_uses_it() {
        let dir = TempDir::new("svc").unwrap();
        let want: Vec<u64>;
        {
            let s = svc(dir.path());
            s.create("t", TenantConfig::for_key("t")).unwrap();
            s.add_batch("t", &batch(0..5_000)).unwrap();
            let g = s.snapshot_now().unwrap();
            assert_eq!(g, 1);
            s.add_batch("t", &batch(5_000..8_000)).unwrap();
            // The previous generation survives one rotation (it is the
            // corrupt-snapshot fallback), then ages out on the next.
            assert!(wal_path(dir.path(), 0).exists());
            let g = s.snapshot_now().unwrap();
            assert_eq!(g, 2);
            assert!(!wal_path(dir.path(), 0).exists());
            assert!(wal_path(dir.path(), 1).exists());
            assert!(snapshot_path(dir.path(), 1).exists());
            s.add_batch("t", &batch(8_000..8_500)).unwrap();
            want = (0..10)
                .map(|i| s.rank("t", i as f64 * 777.0).unwrap())
                .collect();
        }
        let s = svc(dir.path());
        let report = s.recovery_report();
        assert_eq!(report.snapshot_gen, Some(2));
        assert_eq!(report.records_replayed, 1, "only the post-snapshot batch");
        let got: Vec<u64> = (0..10)
            .map(|i| s.rank("t", i as f64 * 777.0).unwrap())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_one_generation_without_data_loss() {
        let dir = TempDir::new("svc").unwrap();
        {
            let s = svc(dir.path());
            s.create("t", TenantConfig::for_key("t")).unwrap();
            s.add_batch("t", &batch(0..4_000)).unwrap();
            s.snapshot_now().unwrap(); // gen 1
            s.add_batch("t", &batch(4_000..6_000)).unwrap();
            s.snapshot_now().unwrap(); // gen 2; gen-1 files retained
            s.add_batch("t", &batch(6_000..7_000)).unwrap();
        }
        // Bit-rot the newest snapshot.
        let p2 = snapshot_path(dir.path(), 2);
        let mut raw = std::fs::read(&p2).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        std::fs::write(&p2, &raw).unwrap();

        let s = svc(dir.path());
        let report = s.recovery_report();
        assert_eq!(report.snapshot_gen, Some(1), "must fall back to gen 1");
        assert_eq!(report.skipped_snapshots, vec![2]);
        assert_eq!(report.wal_files_replayed, 2, "wal-1 then wal-2");
        // Nothing was lost: every batch is present.
        assert_eq!(s.stats("t").unwrap().n, 7_000);
    }

    #[test]
    fn double_open_is_refused_but_stale_locks_are_reclaimed() {
        let dir = TempDir::new("svc").unwrap();
        let first = svc(dir.path());
        let second = QuantileService::open(ServiceConfig::new(dir.path()));
        assert!(
            matches!(second, Err(ReqError::Io(_))),
            "live lock must refuse a second instance"
        );
        drop(first);
        let third = svc(dir.path()); // clean release → reacquire
        drop(third);
        // A crash leaves the lock behind with a dead pid: reclaimable.
        std::fs::write(dir.path().join("LOCK"), "999999999").unwrap();
        let fourth = QuantileService::open(ServiceConfig::new(dir.path()));
        assert!(fourth.is_ok(), "stale lock must not brick recovery");
    }

    #[test]
    fn oversized_batches_are_rejected_before_logging() {
        // Not an actual giant allocation: just over the limit in length
        // terms via a zero-copy check is impossible, so assert the
        // constant's envelope arithmetic instead and the rejection using
        // a slice we can afford is covered by the limit comparison.
        assert!(MAX_BATCH_VALUES as u64 * 8 + 256 <= req_core::frame::MAX_FRAME_PAYLOAD as u64);
    }

    #[test]
    fn orphaned_tmp_snapshots_are_swept_on_open() {
        let dir = TempDir::new("svc").unwrap();
        let tmp = dir.path().join("snap-0000000009.snap.tmp");
        std::fs::write(&tmp, b"half-written").unwrap();
        let _s = svc(dir.path());
        assert!(!tmp.exists(), "open() must reclaim interrupted snapshots");
    }

    #[test]
    fn racing_drop_and_ingest_never_poison_the_wal() {
        // Hammer DROP/CREATE against concurrent ADDB on the same key; the
        // WAL must stay replayable (an AddBatch after its tenant's Drop
        // would make recovery fail forever).
        let dir = TempDir::new("svc").unwrap();
        {
            let s = svc(dir.path());
            s.create("k", TenantConfig::for_key("k")).unwrap();
            std::thread::scope(|scope| {
                let svc_ref = &s;
                scope.spawn(move || {
                    for _ in 0..200 {
                        let _ = svc_ref.add_batch("k", &batch(0..50));
                    }
                });
                scope.spawn(move || {
                    for _ in 0..50 {
                        let _ = svc_ref.drop_key("k");
                        let _ = svc_ref.create("k", TenantConfig::for_key("k"));
                    }
                });
            });
        }
        // The only acceptance: recovery replays cleanly.
        let s = svc(dir.path());
        assert!(s.recovery_report().records_replayed > 0);
    }

    #[test]
    fn record_count_trigger_snapshots_automatically() {
        let dir = TempDir::new("svc").unwrap();
        let mut cfg = ServiceConfig::new(dir.path());
        cfg.snapshot_every_records = 4;
        let s = QuantileService::open(cfg).unwrap();
        s.create("t", TenantConfig::for_key("t")).unwrap();
        for c in 0..7 {
            s.add_batch("t", &batch(c * 100..(c + 1) * 100)).unwrap();
        }
        // 8 records: trigger fired at 4 and 8.
        assert_eq!(s.snapshots_written(), 2);
        assert_eq!(s.generation(), 2);
        assert_eq!(s.records_in_generation(), 0);
    }

    #[test]
    fn empty_batch_is_not_logged() {
        let dir = TempDir::new("svc").unwrap();
        let s = svc(dir.path());
        s.create("t", TenantConfig::for_key("t")).unwrap();
        assert_eq!(s.add_batch("t", &[]).unwrap(), 0);
        assert_eq!(s.records_in_generation(), 1, "only the CREATE");
    }

    #[test]
    fn errors_surface_cleanly() {
        let dir = TempDir::new("svc").unwrap();
        let s = svc(dir.path());
        assert!(s.rank("ghost", 1.0).is_err());
        assert!(s.add_batch("ghost", &batch(0..5)).is_err());
        assert!(s.drop_key("ghost").is_err());
        s.create("t", TenantConfig::for_key("t")).unwrap();
        assert!(s.create("t", TenantConfig::for_key("t")).is_err());
        assert!(s.quantile("t", 1.5).is_err());
        assert!(s.cdf("t", &[3.0, 1.0]).is_err());
        assert!(s.create("bad key!", TenantConfig::for_key("x")).is_err());
        // An empty tenant answers quantile with None and rank 0.
        assert_eq!(s.quantile("t", 0.5).unwrap(), None);
        assert_eq!(s.rank("t", 10.0).unwrap(), 0);
    }

    #[test]
    fn stats_wire_roundtrip() {
        let dir = TempDir::new("svc").unwrap();
        let s = svc(dir.path());
        s.create(
            "t",
            TenantConfig::parse("t", &["K=8", "LRA", "SHARDS=3"]).unwrap(),
        )
        .unwrap();
        s.add_batch("t", &batch(0..1_000)).unwrap();
        let stats = s.stats("t").unwrap();
        let parsed: TenantStats = stats.to_string().parse().unwrap();
        assert_eq!(parsed, stats);
        assert!(!parsed.hra);
        assert_eq!(parsed.shards, 3);
    }

    #[test]
    fn background_snapshotter_runs_and_stops() {
        let dir = TempDir::new("svc").unwrap();
        let s = Arc::new(svc(dir.path()));
        s.create("t", TenantConfig::for_key("t")).unwrap();
        s.add_batch("t", &batch(0..100)).unwrap();
        let snapper = s.spawn_snapshotter(Duration::from_millis(20));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while s.snapshots_written() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(s.snapshots_written() >= 1, "snapshotter never fired");
        drop(snapper); // must stop and join without hanging
        let after = s.snapshots_written();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(s.snapshots_written(), after, "thread kept running");
    }

    /// Pump the primary's WAL into the follower until the follower's
    /// watermark matches: the loop a TailShipper runs, inlined.
    fn catch_up(primary: &QuantileService, follower: &QuantileService) {
        loop {
            let (gen, len) = follower.wal_watermark();
            let seg = primary.tail(gen, len, 1 << 20).unwrap();
            if !seg.frames.is_empty() {
                follower.replicate_frames(&seg.frames).unwrap();
                continue;
            }
            if seg.sealed {
                follower.rotate_generation().unwrap();
                continue;
            }
            break;
        }
    }

    #[test]
    fn follower_refuses_mutations_until_promoted() {
        let dir = TempDir::new("svc").unwrap();
        let s = svc(dir.path());
        s.create("t", TenantConfig::for_key("t")).unwrap();
        s.set_follower(true);
        assert!(s.is_follower());
        let err = s.add("t", 1.0).unwrap_err();
        assert!(matches!(err, ReqError::Unavailable(_)), "got {err:?}");
        assert!(s.create("u", TenantConfig::for_key("u")).is_err());
        // Bounded-lag reads keep answering on a follower.
        assert_eq!(s.rank("t", 1.0).unwrap(), 0);
        s.set_follower(false); // promotion
        s.add("t", 1.0).unwrap();
        assert_eq!(s.stats("t").unwrap().n, 1);
    }

    #[test]
    fn replication_reaches_byte_identical_state() {
        let pdir = TempDir::new("svc-p").unwrap();
        let fdir = TempDir::new("svc-f").unwrap();
        let p = svc(pdir.path());
        let f = svc(fdir.path());
        f.set_follower(true);
        p.create(
            "t",
            TenantConfig::parse("t", &["K=16", "SHARDS=2"]).unwrap(),
        )
        .unwrap();
        for c in 0..8u64 {
            p.add_batch("t", &batch(c * 1_000..(c + 1) * 1_000))
                .unwrap();
            catch_up(&p, &f);
            // Byte identity at every shipped watermark: serialized shard
            // state (v3 bytes incl. RNG reseed draws) and the WAL file.
            assert_eq!(f.sketch_parts("t").unwrap(), p.sketch_parts("t").unwrap());
            assert_eq!(f.wal_watermark(), p.wal_watermark());
        }
        let p_wal = std::fs::read(wal_path(pdir.path(), 0)).unwrap();
        let f_wal = std::fs::read(wal_path(fdir.path(), 0)).unwrap();
        assert_eq!(p_wal, f_wal, "replicated WAL is not byte-identical");
        // Promote and verify the follower serves the same answers.
        f.set_follower(false);
        for probe in [0.0, 1_999.0, 4_000.5, 7_999.0] {
            assert_eq!(f.rank("t", probe).unwrap(), p.rank("t", probe).unwrap());
        }
        assert_eq!(f.stats("t").unwrap().n, 8_000);
    }

    #[test]
    fn replication_stays_identical_across_snapshot_rotation() {
        let pdir = TempDir::new("svc-p").unwrap();
        let fdir = TempDir::new("svc-f").unwrap();
        let p = svc(pdir.path());
        let f = svc(fdir.path());
        f.set_follower(true);
        p.create("t", TenantConfig::for_key("t")).unwrap();
        p.add_batch("t", &batch(0..5_000)).unwrap();
        // Primary rotates: checkpoint (shard swap) + new WAL generation.
        // The follower must mirror the seal at the same record index for
        // the deterministic shard-swap transition to line up.
        assert_eq!(p.snapshot_now().unwrap(), 1);
        p.add_batch("t", &batch(5_000..9_000)).unwrap();
        catch_up(&p, &f);
        assert_eq!(f.wal_watermark(), p.wal_watermark());
        assert_eq!(f.sketch_parts("t").unwrap(), p.sketch_parts("t").unwrap());
        for g in 0..=1u64 {
            let p_wal = std::fs::read(wal_path(pdir.path(), g)).unwrap();
            let f_wal = std::fs::read(wal_path(fdir.path(), g)).unwrap();
            assert_eq!(p_wal, f_wal, "generation {g} WAL diverged");
        }
        // The mirrored rotation also wrote a byte-identical snapshot.
        let p_snap = std::fs::read(snapshot_path(pdir.path(), 1)).unwrap();
        let f_snap = std::fs::read(snapshot_path(fdir.path(), 1)).unwrap();
        assert_eq!(p_snap, f_snap, "snapshot diverged");
    }

    #[test]
    fn tail_rejects_unknown_generation_and_bad_offsets() {
        let dir = TempDir::new("svc").unwrap();
        let s = svc(dir.path());
        s.create("t", TenantConfig::for_key("t")).unwrap();
        assert!(matches!(
            s.tail(7, 0, 1 << 20),
            Err(ReqError::InvalidParameter(_))
        ));
        assert!(matches!(
            s.tail(0, 3, 1 << 20), // inside the magic header
            Err(ReqError::InvalidParameter(_))
        ));
        assert!(matches!(
            s.tail(0, 1 << 40, 1 << 20), // past end of file
            Err(ReqError::InvalidParameter(_))
        ));
        // A fully caught-up cursor yields an empty, unsealed segment.
        let (gen, len) = s.wal_watermark();
        let seg = s.tail(gen, len, 1 << 20).unwrap();
        assert!(seg.frames.is_empty() && !seg.sealed);
        assert_eq!(seg.latest_gen, gen);
    }

    #[test]
    fn tail_always_ships_at_least_one_frame() {
        let dir = TempDir::new("svc").unwrap();
        let s = svc(dir.path());
        s.create("t", TenantConfig::for_key("t")).unwrap();
        s.add_batch("t", &batch(0..2_000)).unwrap(); // one big frame
        let seg = s.tail(0, 0, 1).unwrap(); // 1-byte budget
        assert!(
            !seg.frames.is_empty(),
            "an oversized frame must not wedge the stream"
        );
        // And the shipped bytes are whole frames: a follower applies them.
        let fdir = TempDir::new("svc-f").unwrap();
        let f = svc(fdir.path());
        f.set_follower(true);
        assert_eq!(f.replicate_frames(&seg.frames).unwrap(), 1);
    }

    #[test]
    fn replicate_frames_guards_and_torn_tail_resumes_clean() {
        let pdir = TempDir::new("svc-p").unwrap();
        let fdir = TempDir::new("svc-f").unwrap();
        let p = svc(pdir.path());
        p.create("t", TenantConfig::for_key("t")).unwrap();
        p.add_batch("t", &batch(0..100)).unwrap();
        let seg = p.tail(0, 0, 1 << 20).unwrap();
        let f = svc(fdir.path());
        // Not a follower: refused outright, nothing applied.
        assert!(f.replicate_frames(&seg.frames).is_err());
        f.set_follower(true);
        // Torn stream: all but the last 3 bytes. The whole leading frames
        // apply; the torn one errors without corrupting anything.
        let torn = &seg.frames[..seg.frames.len() - 3];
        let applied = match f.replicate_frames(torn) {
            Ok(n) => n,
            Err(_) => {
                // Partial progress is durable; resume from the local
                // watermark and converge.
                let (gen, len) = f.wal_watermark();
                let rest = p.tail(gen, len, 1 << 20).unwrap();
                f.replicate_frames(&rest.frames).unwrap();
                2
            }
        };
        assert_eq!(applied, 2);
        assert_eq!(f.wal_watermark(), p.wal_watermark());
        assert_eq!(f.sketch_parts("t").unwrap(), p.sketch_parts("t").unwrap());
    }
}
