//! Per-tenant sketch configuration and service-wide settings.
//!
//! A tenant's [`TenantConfig`] is decided once, at `CREATE`, and then
//! becomes part of the durable record: it is encoded into the WAL's
//! `Create` record and into every snapshot, so recovery rebuilds each
//! tenant's sharded sketch with exactly the parameters — **and seed** —
//! the original had. The seed is what makes replay deterministic: a
//! recovered sketch that re-applies the same batches flips the same coins.

use bytes::{BufMut, Bytes, BytesMut};
use req_core::binary::Packable;
use req_core::{CompactionSchedule, ConcurrentReqSketch, OrdF64, ParamPolicy, ReqError, ReqSketch};
use std::fmt;
use std::path::PathBuf;

/// Longest accepted tenant key (protocol tokens stay single-line friendly).
pub const MAX_KEY_LEN: usize = 128;

/// How a tenant's REQ sketch is parameterized. One of:
///
/// * a direct section size `k` (the workhorse knob), or
/// * an accuracy target `(ε, δ)` resolved through
///   [`ParamPolicy::mergeable`] — the right choice when the caller thinks
///   in error guarantees rather than sketch internals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Accuracy {
    /// Fixed section size `k` (even, ≥ 4).
    K(u32),
    /// Relative-error target `ε` with failure probability `δ`.
    EpsDelta(f64, f64),
}

/// Everything needed to (re)build one tenant's sharded sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Sketch accuracy parameterization.
    pub accuracy: Accuracy,
    /// High-rank orientation (`true` = tail quantiles get the tight side
    /// of the guarantee; the default for latency workloads).
    pub hra: bool,
    /// Compaction schedule for every shard. [`CompactionSchedule::Adaptive`]
    /// is the default: service snapshots merge shards constantly, and the
    /// adaptive schedule keeps those merges seamless (E15).
    pub schedule: CompactionSchedule,
    /// Number of ingest shards behind the tenant's
    /// [`ConcurrentReqSketch`].
    pub shards: u32,
    /// Base RNG seed. Defaults to a stable hash of the key so identical
    /// `CREATE`s — including replayed ones — build identical sketches.
    pub seed: u64,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            accuracy: Accuracy::K(32),
            hra: true,
            schedule: CompactionSchedule::Adaptive,
            shards: 4,
            seed: 0,
        }
    }
}

/// Stable 64-bit FNV-1a over the key, used for default seeds (and registry
/// lock sharding). Deliberately *not* `DefaultHasher`: the seed lands in
/// durable state, so it must never depend on an unspecified std detail.
pub fn stable_key_hash(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Validate a tenant key: printable ASCII without spaces, bounded length.
pub fn validate_key(key: &str) -> Result<(), ReqError> {
    if key.is_empty() || key.len() > MAX_KEY_LEN {
        return Err(ReqError::InvalidParameter(format!(
            "key must be 1..={MAX_KEY_LEN} bytes"
        )));
    }
    if !key
        .bytes()
        .all(|b| b.is_ascii_graphic() && b != b'"' && b != b'\\')
    {
        return Err(ReqError::InvalidParameter(
            "key must be printable ASCII without spaces, quotes, or backslashes".into(),
        ));
    }
    Ok(())
}

impl TenantConfig {
    /// Default configuration for `key`: seed derived from the key name.
    pub fn for_key(key: &str) -> Self {
        TenantConfig {
            seed: stable_key_hash(key),
            ..TenantConfig::default()
        }
    }

    /// Parse `CREATE` option tokens (`EPS=0.01`, `DELTA=0.05`, `K=32`,
    /// `HRA`, `LRA`, `SCHEDULE=standard|adaptive`, `SHARDS=4`, `SEED=7`)
    /// on top of [`TenantConfig::for_key`] defaults.
    pub fn parse(key: &str, tokens: &[&str]) -> Result<Self, ReqError> {
        let mut cfg = TenantConfig::for_key(key);
        let mut eps: Option<f64> = None;
        let mut delta: Option<f64> = None;
        let bad = |t: &str| ReqError::InvalidParameter(format!("bad CREATE option `{t}`"));
        for t in tokens {
            let upper = t.to_ascii_uppercase();
            match upper.as_str() {
                "HRA" => cfg.hra = true,
                "LRA" => cfg.hra = false,
                _ => {
                    let (name, value) = upper.split_once('=').ok_or_else(|| bad(t))?;
                    match name {
                        "EPS" => eps = Some(value.parse().map_err(|_| bad(t))?),
                        "DELTA" => delta = Some(value.parse().map_err(|_| bad(t))?),
                        "K" => cfg.accuracy = Accuracy::K(value.parse().map_err(|_| bad(t))?),
                        "SHARDS" => cfg.shards = value.parse().map_err(|_| bad(t))?,
                        "SEED" => cfg.seed = value.parse().map_err(|_| bad(t))?,
                        "SCHEDULE" => {
                            cfg.schedule = match value {
                                "STANDARD" => CompactionSchedule::Standard,
                                "ADAPTIVE" => CompactionSchedule::Adaptive,
                                _ => return Err(bad(t)),
                            }
                        }
                        _ => return Err(bad(t)),
                    }
                }
            }
        }
        if let Some(e) = eps {
            cfg.accuracy = Accuracy::EpsDelta(e, delta.unwrap_or(0.05));
        } else if delta.is_some() {
            return Err(ReqError::InvalidParameter(
                "DELTA requires EPS to be given too".into(),
            ));
        }
        cfg.build()?; // validate parameters eagerly, before anything is logged
        Ok(cfg)
    }

    /// Resolve into the sketch policy this configuration names.
    pub fn policy(&self) -> Result<ParamPolicy, ReqError> {
        match self.accuracy {
            Accuracy::K(k) => ParamPolicy::fixed_k(k),
            Accuracy::EpsDelta(eps, delta) => ParamPolicy::mergeable(eps, delta),
        }
    }

    /// Build the tenant's sharded sketch.
    pub fn build(&self) -> Result<ConcurrentReqSketch<OrdF64>, ReqError> {
        if self.shards == 0 || self.shards > 256 {
            return Err(ReqError::InvalidParameter(
                "SHARDS must be in 1..=256".into(),
            ));
        }
        let builder = ReqSketch::<OrdF64>::builder()
            .policy(self.policy()?)
            .high_rank_accuracy(self.hra)
            .schedule(self.schedule)
            .seed(self.seed);
        ConcurrentReqSketch::new(builder, self.shards as usize)
    }

    /// Encode into a WAL/snapshot payload fragment.
    pub fn encode(&self, out: &mut BytesMut) {
        match self.accuracy {
            Accuracy::K(k) => {
                out.put_u8(0);
                out.put_u32_le(k);
                out.put_u64_le(0);
            }
            Accuracy::EpsDelta(eps, delta) => {
                out.put_u8(1);
                out.put_u64_le(eps.to_bits());
                out.put_u64_le(delta.to_bits());
            }
        }
        out.put_u8(self.hra as u8);
        out.put_u8(match self.schedule {
            CompactionSchedule::Standard => 0,
            CompactionSchedule::Adaptive => 1,
        });
        out.put_u32_le(self.shards);
        out.put_u64_le(self.seed);
    }

    /// Decode a fragment produced by [`TenantConfig::encode`].
    pub fn decode(input: &mut Bytes) -> Result<Self, ReqError> {
        let corrupt = |what: &str| ReqError::CorruptBytes(format!("tenant config: {what}"));
        let accuracy = match u8::unpack(input)? {
            0 => {
                let k = u32::unpack(input)?;
                u64::unpack(input)?; // reserved
                Accuracy::K(k)
            }
            1 => {
                let eps = f64::from_bits(u64::unpack(input)?);
                let delta = f64::from_bits(u64::unpack(input)?);
                Accuracy::EpsDelta(eps, delta)
            }
            t => return Err(corrupt(&format!("unknown accuracy tag {t}"))),
        };
        let hra = match u8::unpack(input)? {
            0 => false,
            1 => true,
            b => return Err(corrupt(&format!("bad hra byte {b}"))),
        };
        let schedule = match u8::unpack(input)? {
            0 => CompactionSchedule::Standard,
            1 => CompactionSchedule::Adaptive,
            b => return Err(corrupt(&format!("bad schedule byte {b}"))),
        };
        let shards = u32::unpack(input)?;
        let seed = u64::unpack(input)?;
        let cfg = TenantConfig {
            accuracy,
            hra,
            schedule,
            shards,
            seed,
        };
        // A config from disk must still name a buildable sketch.
        cfg.build().map_err(|e| corrupt(&e.to_string()))?;
        Ok(cfg)
    }
}

impl fmt::Display for TenantConfig {
    /// The `CREATE` option form that reproduces this configuration.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.accuracy {
            Accuracy::K(k) => write!(f, "K={k}")?,
            Accuracy::EpsDelta(eps, delta) => write!(f, "EPS={eps} DELTA={delta}")?,
        }
        write!(
            f,
            " {} SCHEDULE={} SHARDS={} SEED={}",
            if self.hra { "HRA" } else { "LRA" },
            match self.schedule {
                CompactionSchedule::Standard => "standard",
                CompactionSchedule::Adaptive => "adaptive",
            },
            self.shards,
            self.seed
        )
    }
}

/// Service-wide settings: where durable state lives and when snapshots
/// happen.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Directory holding `snap-*.snap` and `wal-*.log`. Created on open.
    pub data_dir: PathBuf,
    /// Lock-shard count of the tenant registry (keys hash across these).
    pub registry_shards: usize,
    /// Write a snapshot (and rotate the WAL) automatically once this many
    /// records accumulate in the live WAL generation. `0` disables the
    /// record-count trigger — snapshots then happen only via
    /// `SNAPSHOT`/`snapshot_now` or the background snapshotter.
    pub snapshot_every_records: u64,
    /// `fsync` snapshot files and WAL rotations (crash-of-OS durability).
    /// Off by default: the service always flushes each WAL record to the
    /// OS, which survives a crash of the *process* — the failure mode the
    /// recovery proof (E16) targets.
    pub fsync: bool,
    /// Coalesce concurrent WAL fsyncs into one (`fsync: true` only): an
    /// appender whose record an in-flight `fsync` already covers waits
    /// for that result instead of issuing its own. Durability semantics
    /// are unchanged — no append is acknowledged before a successful
    /// fsync covering it — only the number of `fsync` calls drops. On by
    /// default; turn off to force one fsync per record (A/B benchmarks).
    pub group_commit: bool,
    /// Per-client idempotency dedup window: how many of a client's most
    /// recent sequence numbers the service remembers (and persists through
    /// WAL + snapshots) to make tokened retries exactly-once. Retries
    /// older than the window are rejected as stale instead of re-applied.
    pub dedup_window: u64,
    /// Load-shedding bound: at most this many mutations may be in flight
    /// (queued on the WAL) at once; excess requests fail fast with
    /// [`req_core::ReqError::Busy`] instead of stalling their server
    /// thread/event loop. `0` disables shedding.
    pub max_inflight_mutations: u64,
    /// Optional deterministic fault-injection schedule, threaded through
    /// every WAL/snapshot syscall site. `None` (the default) costs one
    /// branch per site. See [`crate::faults::FaultPlane`].
    pub faults: Option<std::sync::Arc<crate::faults::FaultPlane>>,
}

impl ServiceConfig {
    /// Settings rooted at `data_dir`, defaults elsewhere.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            data_dir: data_dir.into(),
            registry_shards: 16,
            snapshot_every_records: 0,
            fsync: false,
            group_commit: true,
            dedup_window: 64,
            max_inflight_mutations: 0,
            faults: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Buf;

    #[test]
    fn default_parse_roundtrips_through_encode() {
        for (key, tokens) in [
            ("latency", &[][..]),
            ("latency", &["K=16", "LRA", "SHARDS=2"][..]),
            (
                "api.p99",
                &["EPS=0.02", "DELTA=0.1", "SCHEDULE=standard"][..],
            ),
            ("x", &["SEED=99", "HRA", "SCHEDULE=adaptive"][..]),
        ] {
            let cfg = TenantConfig::parse(key, tokens).unwrap();
            let mut out = BytesMut::new();
            cfg.encode(&mut out);
            let mut input = out.freeze();
            let back = TenantConfig::decode(&mut input).unwrap();
            assert_eq!(back, cfg, "roundtrip for {tokens:?}");
            assert!(!input.has_remaining());
        }
    }

    #[test]
    fn display_form_reparses_to_same_config() {
        let cfg = TenantConfig::parse("t", &["EPS=0.05", "LRA", "SHARDS=3"]).unwrap();
        let line = cfg.to_string();
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let back = TenantConfig::parse("t", &tokens).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn seed_is_stable_per_key_and_differs_across_keys() {
        let a = TenantConfig::for_key("alpha");
        let b = TenantConfig::for_key("alpha");
        let c = TenantConfig::for_key("beta");
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.seed, c.seed);
    }

    #[test]
    fn bad_options_are_rejected() {
        for tokens in [
            &["NOPE"][..],
            &["K=3"][..], // odd k rejected by the policy
            &["K=abc"][..],
            &["DELTA=0.1"][..], // delta without eps
            &["EPS=2.0"][..],   // out of range
            &["SHARDS=0"][..],
            &["SCHEDULE=soon"][..],
        ] {
            assert!(
                TenantConfig::parse("k", tokens).is_err(),
                "{tokens:?} accepted"
            );
        }
    }

    #[test]
    fn key_validation() {
        assert!(validate_key("good-key_9.z").is_ok());
        assert!(validate_key("").is_err());
        assert!(validate_key("has space").is_err());
        assert!(validate_key("quote\"char").is_err());
        assert!(validate_key(&"x".repeat(MAX_KEY_LEN + 1)).is_err());
        assert!(validate_key("ünïcode").is_err());
    }

    #[test]
    fn decode_rejects_corrupt_fragments() {
        let cfg = TenantConfig::for_key("t");
        let mut out = BytesMut::new();
        cfg.encode(&mut out);
        let good = out.freeze().to_vec();
        // Truncations and a bad tag byte all reject.
        for cut in 0..good.len() {
            let mut input = Bytes::copy_from_slice(&good[..cut]);
            assert!(TenantConfig::decode(&mut input).is_err(), "cut {cut}");
        }
        let mut bad = good.clone();
        bad[0] = 7;
        let mut input = Bytes::copy_from_slice(&bad);
        assert!(TenantConfig::decode(&mut input).is_err());
    }
}
