//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlane`] sits between the service and the operating system at
//! every *fault site* — the syscall edges where real deployments fail:
//! WAL appends and fsyncs, snapshot writes and renames, and the evented
//! server's socket reads/writes. Each site keeps its own operation
//! counter; whether operation `k` at site `s` faults (and how) is a pure
//! function of `(seed, s, rule, k)`, so a chaos schedule is replayed
//! exactly by reconstructing the plane with the same seed and rules — no
//! RNG state threads through the service, and concurrent sites never
//! perturb each other's schedules.
//!
//! The plane is configuration, not policy: production code paths consult
//! it only when one is installed ([`crate::ServiceConfig::faults`],
//! `req_evented::EventedOptions::faults`), and a disarmed or absent plane
//! costs one branch per site.
//!
//! ```
//! use req_service::faults::{FaultKind, FaultPlane, FaultSite};
//!
//! // Fail one in four WAL fsyncs, tear one in eight WAL appends.
//! let plane = FaultPlane::new(42)
//!     .with(FaultSite::WalSync, FaultKind::Error, 1, 4)
//!     .with(FaultSite::WalWrite, FaultKind::Torn, 1, 8);
//! let first: Vec<_> = (0..4).map(|_| plane.next(FaultSite::WalSync)).collect();
//! // Replay: a plane rebuilt from the same seed and rules repeats itself.
//! let replay = FaultPlane::new(42)
//!     .with(FaultSite::WalSync, FaultKind::Error, 1, 4)
//!     .with(FaultSite::WalWrite, FaultKind::Torn, 1, 8);
//! let again: Vec<_> = (0..4).map(|_| replay.next(FaultSite::WalSync)).collect();
//! assert_eq!(first, again);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Where in the stack a fault can be injected. Each site owns an
/// independent operation counter and schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A WAL frame write (`write_all` of one record).
    WalWrite,
    /// A WAL `fsync` (group commit leader or rotation).
    WalSync,
    /// The torn-append rollback (`set_len` back to the pre-append length).
    /// Faulting here is how chaos runs force the writer to poison.
    WalRollback,
    /// A snapshot tmp-file write.
    SnapWrite,
    /// A snapshot tmp-file `fsync`.
    SnapSync,
    /// The tmp → final snapshot rename.
    SnapRename,
    /// An evented-server socket read.
    SockRead,
    /// An evented-server socket write.
    SockWrite,
}

/// All sites, in wire/counter order.
pub const ALL_SITES: [FaultSite; 8] = [
    FaultSite::WalWrite,
    FaultSite::WalSync,
    FaultSite::WalRollback,
    FaultSite::SnapWrite,
    FaultSite::SnapSync,
    FaultSite::SnapRename,
    FaultSite::SockRead,
    FaultSite::SockWrite,
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::WalWrite => 0,
            FaultSite::WalSync => 1,
            FaultSite::WalRollback => 2,
            FaultSite::SnapWrite => 3,
            FaultSite::SnapSync => 4,
            FaultSite::SnapRename => 5,
            FaultSite::SockRead => 6,
            FaultSite::SockWrite => 7,
        }
    }
}

/// What kind of failure a rule injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail outright before any bytes move (`EIO`-style; at
    /// [`FaultSite::SnapRename`] a failed rename, at a socket edge a hard
    /// connection drop).
    Error,
    /// A short write: a deterministic prefix of the buffer lands, then the
    /// operation errors — the torn-tail / `ENOSPC` shape. On a socket
    /// write this caps the bytes accepted per readiness (no error), which
    /// exercises partial-write resumption.
    Torn,
    /// Stall: the operation makes no progress this turn but is not an
    /// error (socket read parks until the next readiness; file sites treat
    /// it as a delay).
    Stall,
    /// Sleep `ms` before proceeding normally — injected latency.
    Delay(u16),
}

/// The resolved decision for one operation at one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Proceed normally.
    None,
    /// Fail before any side effect.
    Error,
    /// Perform only `keep` bytes of the `total` the caller intended, then
    /// fail (file sites) or accept the prefix (socket writes). `keep` is
    /// strictly less than `total` whenever `total > 0`.
    Torn {
        /// Bytes to let through.
        keep: usize,
    },
    /// No progress this turn; retry on the next readiness/attempt.
    Stall,
    /// Sleep this many milliseconds, then proceed normally.
    Delay(u16),
}

/// One scheduled fault source: at `site`, fire `kind` for the fraction
/// `num/den` of operations (decided per operation index by a seeded hash).
#[derive(Debug, Clone, Copy)]
struct FaultRule {
    site: FaultSite,
    kind: FaultKind,
    num: u32,
    den: u32,
}

/// SplitMix64 finalizer — the same stateless mixer the vendored RNG seeds
/// through. Good enough avalanche that rule decisions are uncorrelated
/// across sites, rules, and operation indices.
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A seeded, deterministic fault-injection schedule. See the module docs.
#[derive(Debug)]
pub struct FaultPlane {
    seed: u64,
    rules: Vec<FaultRule>,
    counters: [AtomicU64; 8],
    armed: AtomicBool,
    injected: AtomicU64,
}

impl FaultPlane {
    /// An empty plane (no rules — every operation proceeds normally).
    pub fn new(seed: u64) -> Self {
        FaultPlane {
            seed,
            rules: Vec::new(),
            counters: Default::default(),
            armed: AtomicBool::new(true),
            injected: AtomicU64::new(0),
        }
    }

    /// Add a rule: at `site`, inject `kind` for `num` out of every `den`
    /// operations (chosen per operation by the seeded hash, not in a
    /// fixed pattern). Rules are evaluated in insertion order; the first
    /// that fires wins.
    pub fn with(mut self, site: FaultSite, kind: FaultKind, num: u32, den: u32) -> Self {
        assert!(den > 0 && num <= den, "rule fraction must be num/den <= 1");
        self.rules.push(FaultRule {
            site,
            kind,
            num,
            den,
        });
        self
    }

    /// Globally enable/disable the plane without losing counters — e.g.
    /// to recover a service cleanly after a chaos window.
    pub fn set_armed(&self, armed: bool) {
        self.armed.store(armed, Ordering::SeqCst);
    }

    /// Is the plane currently injecting?
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// How many faults have been injected so far (all sites).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// How many operations site `s` has decided (faulted or not).
    pub fn operations(&self, site: FaultSite) -> u64 {
        self.counters[site.index()].load(Ordering::Relaxed)
    }

    /// Decide the fate of the next operation at `site`, advancing its
    /// counter. `total` is the byte count the caller is about to move
    /// (used to size [`Fault::Torn`]); pass 0 for non-byte operations.
    pub fn next_sized(&self, site: FaultSite, total: usize) -> Fault {
        let k = self.counters[site.index()].fetch_add(1, Ordering::Relaxed);
        if !self.armed() {
            return Fault::None;
        }
        for (r, rule) in self.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            let h = mix(self.seed ^ mix(((site.index() as u64) << 32) | r as u64) ^ mix(k));
            if (h % rule.den as u64) < rule.num as u64 {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return match rule.kind {
                    FaultKind::Error => Fault::Error,
                    FaultKind::Torn => Fault::Torn {
                        // A strict prefix: high hash bits pick how much of
                        // the buffer lands, never all of it.
                        keep: if total == 0 {
                            0
                        } else {
                            (h >> 32) as usize % total
                        },
                    },
                    FaultKind::Stall => Fault::Stall,
                    FaultKind::Delay(ms) => Fault::Delay(ms),
                };
            }
        }
        Fault::None
    }

    /// [`FaultPlane::next_sized`] for operations without a byte count.
    pub fn next(&self, site: FaultSite) -> Fault {
        self.next_sized(site, 0)
    }

    /// The injected-I/O error all file-site faults surface as, marked so
    /// tests (and humans reading logs) can tell it from a real disk error.
    pub fn io_error(site: FaultSite) -> std::io::Error {
        std::io::Error::other(format!("injected fault at {site:?}"))
    }
}

/// Decide + apply a fault at a *file* site around writing `buf` to `w`:
/// `Error` fails before any bytes move, `Torn` writes a strict prefix and
/// then fails, `Stall`/`Delay` sleep briefly and proceed. Returns
/// `Ok(())` when the full buffer was written.
pub fn faulted_write<W: std::io::Write>(
    plane: Option<&FaultPlane>,
    site: FaultSite,
    w: &mut W,
    buf: &[u8],
) -> std::io::Result<()> {
    match plane.map_or(Fault::None, |p| p.next_sized(site, buf.len())) {
        Fault::None => w.write_all(buf),
        Fault::Error => Err(FaultPlane::io_error(site)),
        Fault::Torn { keep } => {
            w.write_all(&buf[..keep])?;
            w.flush()?;
            Err(FaultPlane::io_error(site))
        }
        Fault::Stall | Fault::Delay(_) => {
            std::thread::sleep(std::time::Duration::from_millis(1));
            w.write_all(buf)
        }
    }
}

/// Decide + apply a fault at a non-byte file site (fsync, rename,
/// rollback): `Error`/`Torn` fail, `Stall`/`Delay` sleep and proceed.
pub fn faulted_op(plane: Option<&FaultPlane>, site: FaultSite) -> std::io::Result<()> {
    match plane.map_or(Fault::None, |p| p.next(site)) {
        Fault::None => Ok(()),
        Fault::Error | Fault::Torn { .. } => Err(FaultPlane::io_error(site)),
        Fault::Stall | Fault::Delay(_) => {
            std::thread::sleep(std::time::Duration::from_millis(1));
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torn_plane() -> FaultPlane {
        FaultPlane::new(7)
            .with(FaultSite::WalWrite, FaultKind::Torn, 1, 3)
            .with(FaultSite::WalSync, FaultKind::Error, 1, 2)
    }

    #[test]
    fn schedules_replay_exactly() {
        let a = torn_plane();
        let b = torn_plane();
        for _ in 0..1000 {
            assert_eq!(
                a.next_sized(FaultSite::WalWrite, 64),
                b.next_sized(FaultSite::WalWrite, 64)
            );
            assert_eq!(a.next(FaultSite::WalSync), b.next(FaultSite::WalSync));
        }
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0, "rules must actually fire");
    }

    #[test]
    fn sites_are_independent() {
        // Interleaving operations at other sites must not shift a site's
        // schedule: WalSync decisions 0..100 are the same whether or not
        // WalWrite ops happen in between.
        let a = torn_plane();
        let b = torn_plane();
        let plain: Vec<Fault> = (0..100).map(|_| a.next(FaultSite::WalSync)).collect();
        let interleaved: Vec<Fault> = (0..100)
            .map(|_| {
                b.next_sized(FaultSite::WalWrite, 8);
                b.next(FaultSite::WalSync)
            })
            .collect();
        assert_eq!(plain, interleaved);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = FaultPlane::new(1).with(FaultSite::SnapSync, FaultKind::Error, 1, 4);
        let fired = (0..4000)
            .filter(|_| p.next(FaultSite::SnapSync) != Fault::None)
            .count();
        // 1/4 of 4000 = 1000; the seeded hash should land well within 3σ.
        assert!((850..1150).contains(&fired), "fired {fired}");
    }

    #[test]
    fn torn_keeps_a_strict_prefix() {
        let p = FaultPlane::new(3).with(FaultSite::SnapWrite, FaultKind::Torn, 1, 1);
        for total in [1usize, 2, 7, 4096] {
            match p.next_sized(FaultSite::SnapWrite, total) {
                Fault::Torn { keep } => assert!(keep < total, "keep {keep} of {total}"),
                other => panic!("expected torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn disarmed_plane_is_transparent() {
        let p = torn_plane();
        p.set_armed(false);
        for _ in 0..100 {
            assert_eq!(p.next_sized(FaultSite::WalWrite, 64), Fault::None);
        }
        assert_eq!(p.injected(), 0);
        // Counters still advance while disarmed, so re-arming resumes the
        // schedule at the true operation index.
        assert_eq!(p.operations(FaultSite::WalWrite), 100);
        p.set_armed(true);
        let fired = (0..100)
            .filter(|_| p.next_sized(FaultSite::WalWrite, 64) != Fault::None)
            .count();
        assert!(fired > 0);
    }

    #[test]
    fn faulted_write_applies_the_decision() {
        let p = FaultPlane::new(9).with(FaultSite::SnapWrite, FaultKind::Torn, 1, 1);
        let mut sink = Vec::new();
        let buf = [0xABu8; 100];
        let err = faulted_write(Some(&p), FaultSite::SnapWrite, &mut sink, &buf).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert!(sink.len() < buf.len(), "torn write must be a strict prefix");
        // No plane: plain write_all.
        sink.clear();
        faulted_write(None, FaultSite::SnapWrite, &mut sink, &buf).unwrap();
        assert_eq!(sink, buf);
    }
}
