//! Append-only write-ahead log of checksummed record frames.
//!
//! Every mutation the service accepts — `CREATE`, `ADD`/`ADDB`, `DROP` —
//! is appended here *before* it is applied to the in-memory registry, as
//! one [`req_core::frame`] frame (`len | crc32 | payload`). The file
//! starts with an 8-byte magic so a stray file is never mistaken for a
//! log.
//!
//! ```text
//! "REQWAL1\n" | frame | frame | frame | ...
//! ```
//!
//! ## Record format v4: idempotency tokens
//!
//! Mutations that arrived with an [`IdemToken`] are logged with the
//! *tokenized* record tags (4–6), whose payload is the v3 payload with
//! `client_id u64 | seq u64` spliced in right after the tag:
//!
//! ```text
//! v3:  tag(1|2|3) | key | payload…
//! v4:  tag(4|5|6) | client_id u64 | seq u64 | key | payload…
//! ```
//!
//! Untokenized mutations still use tags 1–3, byte-identical to v3 — a
//! v4 reader replays v3 logs unchanged, and a v4 log without tokens *is*
//! a v3 log. Replay re-populates the per-client dedup window from the
//! tokens, which is what makes client retries exactly-once across
//! crash+recovery.
//!
//! ## Crash anatomy
//!
//! A killed process can leave at most one *torn* frame at the tail (the
//! write it was in the middle of). [`read_wal`] therefore replays frames
//! until the first invalid one and reports where the valid prefix ends;
//! recovery truncates the file there and resumes appending. A CRC failure
//! *before* the tail is genuine corruption: replay still stops (never
//! apply records after a hole — ordering is part of the state), and the
//! outcome marks the log damaged so the operator can see it.
//!
//! Records carry `f64` *bit patterns*, not rounded text, so replayed
//! ingest is exactly the original ingest.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use req_core::binary::Packable;
use req_core::frame::{frame, read_frame};
use req_core::{OrdF64, ReqError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::config::TenantConfig;
use crate::faults::{faulted_op, faulted_write, FaultPlane, FaultSite};
use crate::protocol::IdemToken;
use std::sync::Arc;

/// File magic; the trailing newline makes `head -c8` output readable.
pub const WAL_MAGIC: &[u8; 8] = b"REQWAL1\n";

const TAG_CREATE: u8 = 1;
const TAG_ADD_BATCH: u8 = 2;
const TAG_DROP: u8 = 3;
// v4: the same three records, carrying an idempotency token.
const TAG_CREATE_T: u8 = 4;
const TAG_ADD_BATCH_T: u8 = 5;
const TAG_DROP_T: u8 = 6;

/// One durable mutation, in arrival order.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A tenant was created with this exact configuration.
    Create {
        /// Tenant key.
        key: String,
        /// The resolved configuration (including seed).
        config: TenantConfig,
        /// The idempotency token the mutation arrived with, if any.
        token: Option<IdemToken>,
    },
    /// A batch of values was ingested into `key` (single `ADD`s are
    /// one-element batches — the sketch's batch path is bit-identical to
    /// per-item ingest).
    AddBatch {
        /// Tenant key.
        key: String,
        /// Ingested values, in order.
        values: Vec<OrdF64>,
        /// The idempotency token the mutation arrived with, if any.
        token: Option<IdemToken>,
    },
    /// The tenant and its data were dropped.
    Drop {
        /// Tenant key.
        key: String,
        /// The idempotency token the mutation arrived with, if any.
        token: Option<IdemToken>,
    },
}

/// Key encoding shared by all records (the `String` Packable layout,
/// without requiring an owned `String`).
fn pack_key(key: &str, out: &mut BytesMut) {
    out.put_u32_le(key.len() as u32);
    out.put_slice(key.as_bytes());
}

/// Tag selection + token splice shared by all encoders: tokenless records
/// stay byte-identical to v3; tokened ones use the v4 tag and carry the
/// token right after it.
fn put_tag(out: &mut BytesMut, v3_tag: u8, v4_tag: u8, token: &Option<IdemToken>) {
    match token {
        None => out.put_u8(v3_tag),
        Some(t) => {
            out.put_u8(v4_tag);
            out.put_u64_le(t.client_id);
            out.put_u64_le(t.seq);
        }
    }
}

fn get_tagged_token(input: &mut Bytes) -> Result<IdemToken, ReqError> {
    if input.remaining() < 16 {
        return Err(ReqError::CorruptBytes(
            "tokenized WAL record too short for its token".into(),
        ));
    }
    Ok(IdemToken {
        client_id: input.get_u64_le(),
        seq: input.get_u64_le(),
    })
}

/// Encode a `Create` frame without building a [`WalRecord`].
pub fn encode_create(key: &str, config: &TenantConfig, token: &Option<IdemToken>) -> Bytes {
    let mut out = BytesMut::new();
    put_tag(&mut out, TAG_CREATE, TAG_CREATE_T, token);
    pack_key(key, &mut out);
    config.encode(&mut out);
    frame(&out)
}

/// Encode an `AddBatch` frame straight off the caller's slice — the hot
/// path appends without cloning the batch into an owned record.
pub fn encode_add_batch(key: &str, values: &[OrdF64], token: &Option<IdemToken>) -> Bytes {
    let mut out = BytesMut::with_capacity(1 + 16 + 4 + key.len() + 4 + 8 * values.len());
    put_tag(&mut out, TAG_ADD_BATCH, TAG_ADD_BATCH_T, token);
    pack_key(key, &mut out);
    out.put_u32_le(values.len() as u32);
    for v in values {
        out.put_u64_le(v.0.to_bits());
    }
    frame(&out)
}

/// Encode a `Drop` frame.
pub fn encode_drop(key: &str, token: &Option<IdemToken>) -> Bytes {
    let mut out = BytesMut::new();
    put_tag(&mut out, TAG_DROP, TAG_DROP_T, token);
    pack_key(key, &mut out);
    frame(&out)
}

impl WalRecord {
    /// Encode into one checksummed frame ready for appending.
    pub fn encode(&self) -> Bytes {
        match self {
            WalRecord::Create { key, config, token } => encode_create(key, config, token),
            WalRecord::AddBatch { key, values, token } => encode_add_batch(key, values, token),
            WalRecord::Drop { key, token } => encode_drop(key, token),
        }
    }

    /// The token this record was logged with, if any.
    pub fn token(&self) -> Option<IdemToken> {
        match self {
            WalRecord::Create { token, .. }
            | WalRecord::AddBatch { token, .. }
            | WalRecord::Drop { token, .. } => *token,
        }
    }

    /// Decode one frame payload (consumed, not re-copied — recovery
    /// feeds [`read_frame`] output straight through). Accepts both the
    /// v3 tags (1–3, tokenless) and the v4 tokenized tags (4–6).
    pub fn decode(mut input: Bytes) -> Result<Self, ReqError> {
        let tag = u8::unpack(&mut input)?;
        let token = match tag {
            TAG_CREATE_T | TAG_ADD_BATCH_T | TAG_DROP_T => Some(get_tagged_token(&mut input)?),
            _ => None,
        };
        let rec = match tag {
            TAG_CREATE | TAG_CREATE_T => WalRecord::Create {
                key: String::unpack(&mut input)?,
                config: TenantConfig::decode(&mut input)?,
                token,
            },
            TAG_ADD_BATCH | TAG_ADD_BATCH_T => {
                let key = String::unpack(&mut input)?;
                let count = u32::unpack(&mut input)? as usize;
                if count * 8 != input.remaining() {
                    return Err(ReqError::CorruptBytes(format!(
                        "add-batch claims {count} values, {} bytes remain",
                        input.remaining()
                    )));
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(OrdF64(f64::from_bits(input.get_u64_le())));
                }
                WalRecord::AddBatch { key, values, token }
            }
            TAG_DROP | TAG_DROP_T => WalRecord::Drop {
                key: String::unpack(&mut input)?,
                token,
            },
            t => {
                return Err(ReqError::CorruptBytes(format!(
                    "unknown WAL record tag {t}"
                )))
            }
        };
        if input.has_remaining() {
            return Err(ReqError::CorruptBytes(format!(
                "{} trailing bytes in WAL record",
                input.remaining()
            )));
        }
        Ok(rec)
    }
}

/// The replayable content of one WAL file.
#[derive(Debug)]
pub struct WalReplay {
    /// Records of the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (magic + whole valid frames) — the
    /// offset recovery truncates to before appending again.
    pub valid_len: u64,
    /// Bytes past the valid prefix (torn tail or corruption), if any.
    pub damaged_bytes: u64,
}

/// Read a WAL file, replaying to exactly the last valid frame.
///
/// Missing files read as empty-and-clean (a crash can land between
/// snapshot rename and new-WAL create). A file too short for — or not
/// carrying — the magic is treated as fully damaged: nothing replays,
/// `valid_len` is 0, and every byte counts as damage.
/// [`WalWriter::open_truncated`] treats any `valid_len` shorter than the
/// magic as "recreate the file from scratch".
pub fn read_wal(path: &Path) -> Result<WalReplay, ReqError> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalReplay {
                records: Vec::new(),
                valid_len: 0,
                damaged_bytes: 0,
            })
        }
        Err(e) => return Err(e.into()),
    }
    if raw.len() < WAL_MAGIC.len() || &raw[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Ok(WalReplay {
            records: Vec::new(),
            valid_len: 0,
            damaged_bytes: raw.len() as u64,
        });
    }
    let total = raw.len() as u64;
    // Move the file buffer into the cursor (no second full copy — a WAL
    // can be the entire post-snapshot history).
    let mut input = Bytes::from(raw);
    input.advance(WAL_MAGIC.len());
    let mut records = Vec::new();
    let mut valid_len = WAL_MAGIC.len() as u64;
    while input.has_remaining() {
        let consumed_before = input.remaining();
        let payload = match read_frame(&mut input) {
            Ok(p) => p,
            Err(_) => break, // torn tail or corruption: stop replay here
        };
        match WalRecord::decode(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => break, // framing intact but content corrupt: stop
        }
        valid_len += (consumed_before - input.remaining()) as u64;
    }
    Ok(WalReplay {
        records,
        valid_len,
        damaged_bytes: total - valid_len,
    })
}

/// Appender for one WAL generation file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    records: u64,
    /// Bytes of whole, successfully appended frames (incl. magic) — the
    /// rollback point when an append fails partway.
    len: u64,
    /// Set when a failed append could not be rolled back; every further
    /// append refuses, so no acknowledged record can ever land *after*
    /// torn bytes (replay stops at the first invalid frame).
    poisoned: bool,
    /// Optional deterministic fault injection on the append/sync/rollback
    /// syscalls; `None` in production.
    faults: Option<Arc<FaultPlane>>,
}

impl WalWriter {
    /// Create (or truncate) a fresh WAL file with its magic header.
    pub fn create(path: &Path) -> Result<Self, ReqError> {
        let mut file = File::create(path)?;
        file.write_all(WAL_MAGIC)?;
        file.flush()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            records: 0,
            len: WAL_MAGIC.len() as u64,
            poisoned: false,
            faults: None,
        })
    }

    /// Open an existing WAL for appending, discarding everything past the
    /// valid prefix `valid_len` (from [`read_wal`]). If the file is missing
    /// or its header is unusable (`valid_len` shorter than the magic), it
    /// is recreated fresh.
    pub fn open_truncated(path: &Path, valid_len: u64) -> Result<Self, ReqError> {
        if valid_len < WAL_MAGIC.len() as u64 || !path.exists() {
            return Self::create(path);
        }
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut writer = WalWriter {
            file,
            path: path.to_path_buf(),
            records: 0,
            len: valid_len,
            poisoned: false,
            faults: None,
        };
        writer.file.seek(SeekFrom::End(0))?;
        Ok(writer)
    }

    /// Install a fault plane on this writer's append/sync/rollback sites.
    /// (Creation itself is never faulted: a writer that can't even write
    /// its magic is indistinguishable from a missing disk.)
    pub fn set_faults(&mut self, faults: Option<Arc<FaultPlane>>) {
        self.faults = faults;
    }

    /// Append one encoded frame and flush it to the OS. A single
    /// `write_all` of the whole frame keeps the torn-write window to one
    /// record; flushing (not fsyncing) makes the record survive a crash of
    /// the *process* — the OS-crash window is closed by [`Self::sync`] or
    /// the `fsync` service setting.
    ///
    /// A failed append (e.g. `ENOSPC` after a partial write) is rolled
    /// back by truncating to the last whole frame; if even the rollback
    /// fails, the writer poisons itself and refuses further appends —
    /// otherwise later (acknowledged!) records would sit beyond torn
    /// bytes and be silently discarded by replay.
    pub fn append(&mut self, encoded: &[u8]) -> Result<(), ReqError> {
        if self.poisoned {
            return Err(ReqError::Io(format!(
                "WAL {} is poisoned by an earlier failed append",
                self.path.display()
            )));
        }
        let result = faulted_write(
            self.faults.as_deref(),
            FaultSite::WalWrite,
            &mut self.file,
            encoded,
        )
        .and_then(|()| self.file.flush());
        match result {
            Ok(()) => {
                self.len += encoded.len() as u64;
                self.records += 1;
                Ok(())
            }
            Err(e) => {
                let rollback = faulted_op(self.faults.as_deref(), FaultSite::WalRollback)
                    .and_then(|()| self.file.set_len(self.len))
                    .and_then(|()| self.file.seek(SeekFrom::Start(self.len)).map(|_| ()));
                if rollback.is_err() {
                    self.poisoned = true;
                }
                Err(e.into())
            }
        }
    }

    /// `fsync` the file.
    pub fn sync(&self) -> Result<(), ReqError> {
        faulted_op(self.faults.as_deref(), FaultSite::WalSync)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Has an unrecoverable append failure poisoned this writer? Once
    /// true, every append fails until the WAL is rotated (a snapshot
    /// starts a fresh generation) — the service surfaces this as
    /// read-only mode.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// A second fd onto the same open file, for syncing *outside* the
    /// appender lock: `sync_data` on the clone flushes every byte already
    /// written through the original fd (both share one kernel file
    /// description), so a group-commit leader can fsync a watermark while
    /// other appenders keep appending. See
    /// [`crate::service::QuantileService`]'s group commit.
    pub fn sync_handle(&self) -> Result<File, ReqError> {
        Ok(self.file.try_clone()?)
    }

    /// Records appended through this writer (excludes pre-existing ones).
    pub fn records_appended(&self) -> u64 {
        self.records
    }

    /// Byte length of the file's valid prefix (magic + whole appended
    /// frames) — the watermark replication tails from.
    pub fn valid_len(&self) -> u64 {
        self.len
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = crate::tempdir::unique_dir("wal-unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_records() -> Vec<WalRecord> {
        let token = Some(IdemToken {
            client_id: 11,
            seq: 5,
        });
        vec![
            WalRecord::Create {
                key: "a".into(),
                config: TenantConfig::for_key("a"),
                token: None,
            },
            WalRecord::AddBatch {
                key: "a".into(),
                values: (0..100).map(|i| OrdF64(i as f64 * 0.5)).collect(),
                token,
            },
            WalRecord::AddBatch {
                key: "a".into(),
                values: vec![OrdF64(f64::NAN), OrdF64(-0.0)],
                token: None,
            },
            WalRecord::Drop {
                key: "a".into(),
                token,
            },
        ]
    }

    #[test]
    fn records_roundtrip_bit_exactly() {
        for rec in sample_records() {
            let encoded = rec.encode();
            let mut input = encoded.clone();
            let payload = read_frame(&mut input).unwrap();
            let back = WalRecord::decode(payload).unwrap();
            // OrdF64 equality is total-order equality, so NaN and -0.0
            // must round-trip to the same bit patterns.
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn tokenless_records_are_byte_identical_to_v3() {
        // The v4 writer must emit exactly the v3 bytes when no token is
        // attached: tag 2, then key, then count, then bits — nothing else.
        let rec = WalRecord::AddBatch {
            key: "k".into(),
            values: vec![OrdF64(1.5)],
            token: None,
        };
        let mut framed = rec.encode();
        let payload = read_frame(&mut framed).unwrap();
        let mut want = BytesMut::new();
        want.put_u8(2); // v3 TAG_ADD_BATCH
        want.put_u32_le(1);
        want.put_slice(b"k");
        want.put_u32_le(1);
        want.put_u64_le(1.5f64.to_bits());
        assert_eq!(&payload[..], &want[..]);
        // And a tokenized record is the same payload behind tag 5 + token.
        let rec_t = WalRecord::AddBatch {
            key: "k".into(),
            values: vec![OrdF64(1.5)],
            token: Some(IdemToken {
                client_id: 9,
                seq: 2,
            }),
        };
        let mut framed = rec_t.encode();
        let payload_t = read_frame(&mut framed).unwrap();
        assert_eq!(payload_t[0], 5);
        assert_eq!(&payload_t[17..], &want[1..]);
    }

    #[test]
    fn truncated_tokenized_records_reject() {
        let rec = WalRecord::Drop {
            key: "k".into(),
            token: Some(IdemToken {
                client_id: 1,
                seq: 2,
            }),
        };
        let mut framed = rec.encode();
        let payload = read_frame(&mut framed).unwrap();
        for cut in 0..payload.len() {
            let prefix = Bytes::copy_from_slice(&payload[..cut]);
            assert!(WalRecord::decode(prefix).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn injected_torn_append_rolls_back_and_injected_rollback_poisons() {
        use crate::faults::{FaultKind, FaultPlane, FaultSite};

        // Every append tears; the rollback still succeeds, so the writer
        // stays healthy and the file holds only whole frames.
        let path = tmp("chaos.log");
        let mut w = WalWriter::create(&path).unwrap();
        w.set_faults(Some(Arc::new(FaultPlane::new(5).with(
            FaultSite::WalWrite,
            FaultKind::Torn,
            1,
            1,
        ))));
        let rec = &sample_records()[1];
        assert!(w.append(&rec.encode()).is_err());
        assert!(!w.poisoned());
        let replay = read_wal(&path).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.damaged_bytes, 0, "rollback must erase the tear");

        // Now fault the rollback too: the writer must poison and refuse.
        w.set_faults(Some(Arc::new(
            FaultPlane::new(5)
                .with(FaultSite::WalWrite, FaultKind::Torn, 1, 1)
                .with(FaultSite::WalRollback, FaultKind::Error, 1, 1),
        )));
        assert!(w.append(&rec.encode()).is_err());
        assert!(w.poisoned());
        let err = w.append(&rec.encode()).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        // The torn tail is on disk, but replay still stops cleanly.
        let replay = read_wal(&path).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay.damaged_bytes > 0);
    }

    #[test]
    fn append_then_read_replays_everything() {
        let path = tmp("clean.log");
        let mut w = WalWriter::create(&path).unwrap();
        let records = sample_records();
        for rec in &records {
            w.append(&rec.encode()).unwrap();
        }
        assert_eq!(w.records_appended(), records.len() as u64);
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.damaged_bytes, 0);
        assert_eq!(replay.valid_len, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn torn_tail_replays_to_last_valid_frame() {
        let path = tmp("torn.log");
        let mut w = WalWriter::create(&path).unwrap();
        let records = sample_records();
        for rec in &records {
            w.append(&rec.encode()).unwrap();
        }
        drop(w);
        let full = std::fs::metadata(&path).unwrap().len();
        let last = records.last().unwrap().encode().len() as u64;
        // Tear the last frame in half.
        let torn_at = full - last / 2;
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(torn_at)
            .unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.records, records[..records.len() - 1]);
        assert_eq!(replay.valid_len, full - last);
        assert_eq!(replay.damaged_bytes, torn_at - (full - last));
    }

    #[test]
    fn open_truncated_discards_torn_tail_and_appends_cleanly() {
        let path = tmp("resume.log");
        let mut w = WalWriter::create(&path).unwrap();
        let records = sample_records();
        for rec in &records[..2] {
            w.append(&rec.encode()).unwrap();
        }
        drop(w);
        // Simulate a torn write.
        OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(&[0xAB; 5])
            .unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.damaged_bytes, 5);
        let mut w = WalWriter::open_truncated(&path, replay.valid_len).unwrap();
        w.append(&records[2].encode()).unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.records, records[..3]);
        assert_eq!(replay.damaged_bytes, 0);
    }

    #[test]
    fn missing_and_alien_files_are_not_replayed() {
        let missing = tmp("never-created.log");
        let replay = read_wal(&missing).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.valid_len, 0);

        let alien = tmp("alien.log");
        std::fs::write(&alien, b"definitely not a WAL file").unwrap();
        let replay = read_wal(&alien).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay.damaged_bytes > 0);
    }

    #[test]
    fn mid_file_bitflip_stops_replay_and_reports_damage() {
        let path = tmp("bitrot.log");
        let mut w = WalWriter::create(&path).unwrap();
        let records = sample_records();
        for rec in &records {
            w.append(&rec.encode()).unwrap();
        }
        drop(w);
        // Flip one payload bit inside the second frame.
        let first = records[0].encode().len();
        let mut raw = std::fs::read(&path).unwrap();
        let off = WAL_MAGIC.len() + first + 12;
        raw[off] ^= 1;
        std::fs::write(&path, &raw).unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.records, records[..1], "replay must stop at the hole");
        assert!(replay.damaged_bytes > 0);
    }
}
