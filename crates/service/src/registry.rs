//! Keyed, multi-tenant sketch registry behind sharded locks.
//!
//! Tenant lookups and mutations hash the key onto one of
//! `registry_shards` independent `RwLock<HashMap>`s, so traffic to
//! different tenants never contends on one lock. Each tenant *value* is an
//! [`Arc<Tenant>`]: a lookup clones the `Arc` and releases the map lock
//! immediately — ingest and queries then synchronize only on the tenant's
//! own locks (its sketch's internal shard locks, plus the `op_lock` that
//! keeps WAL order equal to apply order; see [`crate::service`]).

use parking_lot::{Mutex, RwLock};
use req_core::{ConcurrentReqSketch, OrdF64, ReqError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::config::{stable_key_hash, TenantConfig};

/// One named sketch with its configuration.
#[derive(Debug)]
pub struct Tenant {
    /// The tenant's key.
    pub name: String,
    /// Immutable configuration fixed at `CREATE`.
    pub config: TenantConfig,
    /// The sharded sketch ingest lands in.
    pub sketch: ConcurrentReqSketch<OrdF64>,
    /// Serializes `[WAL append → apply]` per tenant, so replaying the WAL
    /// reproduces the exact apply order (the durability identity proof
    /// depends on it). Queries never take this.
    pub(crate) op_lock: Mutex<()>,
    /// Set (under `op_lock`) when the tenant's `Drop` record has been
    /// logged. An ingest that raced the drop — it resolved its `Arc`
    /// before the key was removed — re-checks this after taking
    /// `op_lock`, so an `AddBatch` frame can never land *after* the
    /// tenant's `Drop` frame in the WAL (which would make every future
    /// replay fail on an unknown key).
    pub(crate) dropped: AtomicBool,
}

impl Tenant {
    /// Build a fresh tenant from its configuration.
    pub fn new(name: &str, config: TenantConfig) -> Result<Self, ReqError> {
        Ok(Tenant {
            name: name.to_string(),
            sketch: config.build()?,
            config,
            op_lock: Mutex::new(()),
            dropped: AtomicBool::new(false),
        })
    }

    /// Rebuild a tenant from recovered state.
    pub fn from_parts(
        name: String,
        config: TenantConfig,
        sketch: ConcurrentReqSketch<OrdF64>,
    ) -> Self {
        Tenant {
            name,
            config,
            sketch,
            op_lock: Mutex::new(()),
            dropped: AtomicBool::new(false),
        }
    }
}

/// Sharded-lock map of tenants.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<RwLock<HashMap<String, Arc<Tenant>>>>,
}

impl Registry {
    /// A registry with `lock_shards` independent lock shards.
    pub fn new(lock_shards: usize) -> Self {
        let lock_shards = lock_shards.max(1);
        Registry {
            shards: (0..lock_shards)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard_for(&self, key: &str) -> &RwLock<HashMap<String, Arc<Tenant>>> {
        let idx = (stable_key_hash(key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Look a tenant up (lock held only for the map probe).
    pub fn get(&self, key: &str) -> Option<Arc<Tenant>> {
        self.shard_for(key).read().get(key).cloned()
    }

    /// Insert a new tenant under `key`, running `log` (the WAL append)
    /// while the map's write lock is held — a concurrent duplicate
    /// `CREATE` therefore cannot interleave between the existence check,
    /// the durable record, and the insert. `log`'s success value is
    /// passed through (the service uses it to report "logged but the
    /// fsync failed" — the tenant is still inserted in that case, since
    /// the record is in the WAL and replay would recreate it).
    pub fn create_with<T, F>(&self, key: &str, config: TenantConfig, log: F) -> Result<T, ReqError>
    where
        F: FnOnce() -> Result<T, ReqError>,
    {
        let mut map = self.shard_for(key).write();
        if map.contains_key(key) {
            return Err(ReqError::InvalidParameter(format!(
                "key `{key}` already exists"
            )));
        }
        let tenant = Arc::new(Tenant::new(key, config)?);
        let out = log()?;
        map.insert(key.to_string(), tenant);
        Ok(out)
    }

    /// Insert a tenant rebuilt from a snapshot (recovery path — nothing is
    /// logged). A duplicate key means the snapshot itself is corrupt.
    pub fn create_from_snapshot(&self, tenant: Tenant) -> Result<(), ReqError> {
        let mut map = self.shard_for(&tenant.name).write();
        if map.contains_key(&tenant.name) {
            return Err(ReqError::CorruptBytes(format!(
                "duplicate tenant `{}` in snapshot",
                tenant.name
            )));
        }
        map.insert(tenant.name.clone(), Arc::new(tenant));
        Ok(())
    }

    /// Remove `key`, running `log` under the map's write lock *and* the
    /// tenant's own op lock. Holding `op_lock` across the append means an
    /// in-flight ingest on the same tenant either finished (its record
    /// precedes the `Drop` in the WAL) or has not appended yet (it will
    /// observe the tenant's `dropped` flag and abort) — WAL order stays
    /// replayable.
    pub fn drop_with<T, F>(&self, key: &str, log: F) -> Result<T, ReqError>
    where
        F: FnOnce() -> Result<T, ReqError>,
    {
        let mut map = self.shard_for(key).write();
        let Some(tenant) = map.get(key).cloned() else {
            return Err(ReqError::InvalidParameter(format!("no such key `{key}`")));
        };
        let out;
        {
            let _op = tenant.op_lock.lock();
            out = log()?;
            tenant.dropped.store(true, Ordering::SeqCst);
        }
        map.remove(key);
        Ok(out)
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no tenant exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All tenants, sorted by key — the deterministic order snapshots are
    /// written in.
    pub fn tenants_sorted(&self) -> Vec<Arc<Tenant>> {
        let mut out: Vec<Arc<Tenant>> = self
            .shards
            .iter()
            .flat_map(|s| s.read().values().cloned().collect::<Vec<_>>())
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// All keys, sorted.
    pub fn keys_sorted(&self) -> Vec<String> {
        self.tenants_sorted()
            .iter()
            .map(|t| t.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TenantConfig {
        TenantConfig::parse("t", &["K=8", "SHARDS=2"]).unwrap()
    }

    #[test]
    fn create_get_drop_cycle() {
        let r = Registry::new(4);
        assert!(r.is_empty());
        r.create_with("a", cfg(), || Ok(())).unwrap();
        r.create_with("b", cfg(), || Ok(())).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.keys_sorted(), vec!["a".to_string(), "b".to_string()]);
        let t = r.get("a").unwrap();
        t.sketch.update(OrdF64(1.0));
        assert_eq!(t.sketch.len(), 1);
        assert!(r.get("missing").is_none());
        r.drop_with("a", || Ok(())).unwrap();
        assert!(r.get("a").is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn duplicate_create_and_missing_drop_fail_without_logging() {
        let r = Registry::new(4);
        r.create_with("a", cfg(), || Ok(())).unwrap();
        let mut logged = false;
        let err = r.create_with("a", cfg(), || {
            logged = true;
            Ok(())
        });
        assert!(err.is_err());
        assert!(!logged, "duplicate create must not reach the WAL");
        let err = r.drop_with("zz", || {
            logged = true;
            Ok(())
        });
        assert!(err.is_err());
        assert!(!logged, "missing drop must not reach the WAL");
    }

    #[test]
    fn failed_log_aborts_creation() {
        let r = Registry::new(4);
        let err: Result<(), _> =
            r.create_with("a", cfg(), || Err(ReqError::Io("disk full".into())));
        assert!(matches!(err, Err(ReqError::Io(_))));
        assert!(r.get("a").is_none(), "failed WAL append must not insert");
    }

    #[test]
    fn concurrent_creates_agree_on_one_winner() {
        let r = std::sync::Arc::new(Registry::new(4));
        let wins: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let r = &r;
                    scope.spawn(move || r.create_with("same", cfg(), || Ok(())).is_ok() as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(wins, 1);
        assert_eq!(r.len(), 1);
    }
}
